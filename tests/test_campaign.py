"""The fault-tolerant campaign orchestrator, proven under injected chaos.

Every test here asserts the same headline contract from a different
failure direction: a campaign driven from a manifest — through worker
crashes, injected I/O errors, torn shard tails, duplicate deliveries,
straggler re-dispatch, even SIGKILL of the runner itself — ends with a
``SweepResult.digest()`` byte-identical to an uninterrupted serial
``run_sweep`` of the same grid, and a resume never re-simulates a
stored, verified point.

The faults come from :mod:`repro.sim.faultinject` (env-driven, fuse for
exactly-once, selector for targeting), so each scenario is
deterministic, not merely probable.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import CampaignError, SweepError
from repro.sim import faultinject
from repro.sim.campaign import (
    CampaignManifest,
    campaign_status,
    merge_campaign,
    plan_campaign,
    read_ledger,
    run_campaign,
    run_worker,
)
from repro.sim.sweep import SweepCache, run_sweep

EXP = "table3"
OVERRIDES = {"duration_ns": ["8000000000"], "device_variation": ["0.02"]}
SEEDS = list(range(4))
GRID_POINTS = 4


@pytest.fixture(scope="module")
def golden_digest():
    """The uninterrupted serial run every chaos scenario must match."""
    return run_sweep(EXP, SEEDS, OVERRIDES, jobs=1).digest()


def plan(tmp_path, **kwargs) -> CampaignManifest:
    defaults = dict(shards=2, workers=2)
    defaults.update(kwargs)
    return plan_campaign(EXP, SEEDS, OVERRIDES,
                         out_path=tmp_path / "camp.json", **defaults)


def arm(monkeypatch, tmp_path, fault, select=None):
    """Install a fire-once fault plan for this test (and its workers)."""
    monkeypatch.setenv(faultinject.ENV_VAR, fault)
    monkeypatch.setenv(faultinject.FUSE_ENV_VAR, str(tmp_path / "fuse"))
    if select is not None:
        monkeypatch.setenv(faultinject.SELECT_ENV_VAR, str(select))


# -- manifest ----------------------------------------------------------------


def test_manifest_round_trip(tmp_path):
    manifest = plan(tmp_path, deadline_s=9.5, max_retries=5)
    loaded = CampaignManifest.load(manifest.path)
    assert loaded.experiment == EXP
    assert loaded.seeds == SEEDS
    assert loaded.overrides == OVERRIDES
    assert (loaded.shards, loaded.workers) == (2, 2)
    assert loaded.deadline_s == 9.5
    assert loaded.max_retries == 5
    assert loaded.expected == {} and loaded.expected_sweep_digest is None
    # cache_dir resolves relative to the manifest's own directory, so a
    # campaign directory can be moved and resumed in place.
    assert loaded.resolved_cache_dir() == tmp_path / "cache"
    assert len(loaded.grid()) == GRID_POINTS


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.update(kind="other"), "kind"),
    (lambda d: d.update(schema=99), "newer"),
    (lambda d: d.update(seeds=[]), "seeds"),
    (lambda d: d.update(shards=0), "shards"),
    (lambda d: d.pop("experiment"), "experiment"),
])
def test_manifest_validation_rejects(tmp_path, mutate, message):
    manifest = plan(tmp_path)
    doc = json.loads(manifest.path.read_text())
    mutate(doc)
    manifest.path.write_text(json.dumps(doc))
    with pytest.raises(CampaignError, match=message):
        CampaignManifest.load(manifest.path)


def test_manifest_not_json_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{torn")
    with pytest.raises(CampaignError, match="JSON"):
        CampaignManifest.load(path)


def test_plan_validates_grid_up_front(tmp_path):
    with pytest.raises(SweepError, match="no parameter"):
        plan_campaign(EXP, SEEDS, {"nope": ["1"]},
                      out_path=tmp_path / "bad.json")
    with pytest.raises(CampaignError, match="shards"):
        plan_campaign(EXP, SEEDS, OVERRIDES, shards=99,
                      out_path=tmp_path / "bad.json")


def test_ledger_tolerates_torn_tail(tmp_path):
    path = tmp_path / "c.ledger.jsonl"
    path.write_text(
        json.dumps({"i": 0, "key": "aa", "digest": "d0"}) + "\n"
        + "not json\n"
        + json.dumps({"i": 1, "key": "bb", "digest": "d1"}) + "\n"
        + '{"i": 2, "key": "cc", "dig')  # torn mid-append
    assert read_ledger(path) == {"aa": "d0", "bb": "d1"}
    assert read_ledger(tmp_path / "absent.jsonl") == {}


# -- the clean path ----------------------------------------------------------


def test_clean_campaign_matches_serial(tmp_path, golden_digest):
    manifest = plan(tmp_path)
    result = run_campaign(manifest)
    assert result.digest() == golden_digest
    assert result.cache_hits == 0
    assert result.simulated == GRID_POINTS
    # Completion pinned the digests into the manifest...
    pinned = CampaignManifest.load(manifest.path)
    assert pinned.expected_sweep_digest == golden_digest
    assert len(pinned.expected) == GRID_POINTS
    # ...and the fold ledger was retired.
    assert not manifest.ledger_path().exists()

    # Resume of a complete campaign simulates nothing.
    again = run_campaign(manifest.path)
    assert again.digest() == golden_digest
    assert again.cache_hits == GRID_POINTS and again.simulated == 0
    assert again.jobs == 1  # no workers were launched

    status = campaign_status(manifest.path)
    assert status.complete and status.pinned and not status.corrupt
    assert "complete" in status.render()


def test_strict_manifest_merge_verifies_pins(tmp_path, golden_digest):
    manifest = plan(tmp_path)
    run_campaign(manifest)
    merged = merge_campaign(manifest.path, strict=True)
    assert merged.digest() == golden_digest
    # Tamper one pinned digest: the strict merge must name the drift.
    doc = json.loads(manifest.path.read_text())
    key = sorted(doc["expected"])[0]
    doc["expected"][key] = "0" * 64
    manifest.path.write_text(json.dumps(doc))
    with pytest.raises(CampaignError, match="does not match"):
        merge_campaign(manifest.path, strict=True)


# -- injected worker faults --------------------------------------------------


@pytest.mark.parametrize("site", ["pre-run", "mid-shard", "pre-store"])
def test_worker_crash_at_any_site_recovers(tmp_path, monkeypatch, site,
                                           golden_digest):
    """SIGKILL one worker at each instrumented point (exactly once, via
    the fuse); the runner retries the shard and the digest is the
    serial one."""
    manifest = plan(tmp_path)
    arm(monkeypatch, tmp_path, f"crash@{site}")
    events = []
    result = run_campaign(manifest, on_event=events.append)
    assert result.digest() == golden_digest
    assert any("retry" in line for line in events), events
    # The fuse was claimed by the crashed worker, exactly once.
    assert (tmp_path / "fuse").exists()


def test_injected_store_error_fails_worker_then_recovers(
        tmp_path, monkeypatch, golden_digest):
    """An injected OSError at the pre-store site aborts that worker
    with a traceback (nonzero exit); the retry dispatch succeeds."""
    manifest = plan(tmp_path)
    arm(monkeypatch, tmp_path, "raise@pre-store")
    events = []
    result = run_campaign(manifest, on_event=events.append)
    assert result.digest() == golden_digest
    assert any("exited with code" in line for line in events), events


def test_worker_clean_exit_without_coverage_is_retried(
        tmp_path, monkeypatch, golden_digest):
    """A worker that exits 0-adjacent (plain nonzero exit, no crash)
    still leaves its shard incomplete — the scheduler must not trust
    exit codes, only verified coverage."""
    manifest = plan(tmp_path)
    arm(monkeypatch, tmp_path, "exit@pre-run:7")
    result = run_campaign(manifest)
    assert result.digest() == golden_digest


def test_exhausted_retries_abort_with_shard_named(tmp_path, monkeypatch):
    """With no fuse the fault fires every dispatch; after the retry
    budget the campaign aborts naming the shard and the logs."""
    manifest = plan(tmp_path, max_retries=1, backoff_s=0.05,
                    backoff_cap_s=0.1)
    monkeypatch.setenv(faultinject.ENV_VAR, "exit@pre-run:7")
    with pytest.raises(CampaignError, match=r"shard \d .*logs"):
        run_campaign(manifest)


# -- torn tails and duplicates ----------------------------------------------


def test_torn_tail_then_resume(tmp_path, golden_digest):
    """Tear the shard store's tail (a writer crashed mid-append): the
    resume re-verifies, re-simulates only the lost point(s), and the
    digest is unchanged."""
    manifest = plan(tmp_path)
    run_campaign(manifest)
    cache_dir = manifest.resolved_cache_dir()
    shard_file = cache_dir / f"{EXP}.shard"
    faultinject.tear_tail(shard_file, drop=9)
    (cache_dir / f"{EXP}.idx").unlink()  # force the recovery scan
    resumed = run_campaign(manifest.path)
    assert resumed.digest() == golden_digest
    assert resumed.simulated >= 1
    assert resumed.cache_hits == GRID_POINTS - resumed.simulated


def test_duplicate_shard_delivery_is_idempotent(tmp_path, golden_digest):
    """Run the same shard worker twice (the duplicate-delivery race a
    speculative backup can produce): the second delivery stores nothing
    new the verifier cares about, and the campaign folds clean."""
    manifest = plan(tmp_path)
    assert run_worker(manifest.path, 0, 2) == 0
    assert run_worker(manifest.path, 0, 2) == 0  # duplicate delivery
    # Force a genuinely duplicated append too (last-write-wins frames).
    cache = SweepCache(manifest.resolved_cache_dir())
    for point in manifest.grid()[0::2]:
        result = cache.load(point)
        assert result is not None
        result.from_cache = False
        assert cache.store(result)
    result = run_campaign(manifest.path)
    assert result.digest() == golden_digest
    assert result.cache_hits == 2  # shard 0's points came from the store


def test_straggler_gets_speculative_backup(tmp_path, monkeypatch,
                                           golden_digest):
    """A worker sleeping far past the deadline is raced by a backup
    dispatch (the original is *not* killed until its shard completes);
    the backup wins and the loser is reaped."""
    manifest = plan(tmp_path, deadline_s=1.5)
    arm(monkeypatch, tmp_path, "sleep@pre-run:120", select=0)
    events = []
    start = time.monotonic()
    result = run_campaign(manifest, on_event=events.append)
    assert time.monotonic() - start < 60  # nobody waited for the sleeper
    assert result.digest() == golden_digest
    assert any("straggling" in line for line in events), events
    assert any("redundant worker" in line for line in events), events


# -- the acceptance scenario: SIGKILL the runner and a worker ---------------


def _quiesced_status(manifest_path, attempts=120):
    """Campaign status once orphaned workers have stopped appending."""
    previous = -1
    for _ in range(attempts):
        stored = campaign_status(manifest_path).stored
        if stored == previous:
            return campaign_status(manifest_path)
        previous = stored
        time.sleep(0.5)
    raise AssertionError("orphan workers never quiesced")


def test_runner_and_worker_sigkilled_then_resumed(tmp_path, golden_digest):
    """The ISSUE's acceptance criterion, end to end: the campaign runner
    *and* one of its workers are SIGKILLed mid-shard (one deterministic
    stroke via crash-runner); the resume completes from the manifest
    without re-simulating stored valid points, byte-identical."""
    manifest = plan(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env[faultinject.ENV_VAR] = "crash-runner@mid-shard"
    env[faultinject.FUSE_ENV_VAR] = str(tmp_path / "fuse")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(manifest.path)],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == -9, (proc.returncode, proc.stderr)

    status = _quiesced_status(manifest.path)
    assert 0 < status.stored < status.total  # partial progress survived

    resumed = run_campaign(manifest.path)  # clean env: faults off
    assert resumed.digest() == golden_digest
    assert resumed.cache_hits >= status.stored >= 1  # no re-simulation
    assert resumed.simulated == GRID_POINTS - resumed.cache_hits

    # And the now-pinned manifest verifies end to end.
    assert merge_campaign(manifest.path, strict=True).digest() \
        == golden_digest


# -- the in-pool retry satellite (run_sweep itself) --------------------------


def test_run_sweep_retries_worker_exception(tmp_path, monkeypatch,
                                            golden_digest):
    """A worker-side exception on one point no longer aborts the sweep:
    the parent retries the point in-process on a fresh world."""
    arm(monkeypatch, tmp_path, "raise@point", select=2)
    result = run_sweep(EXP, SEEDS, OVERRIDES, jobs=2)
    assert result.digest() == golden_digest


def test_run_sweep_survives_worker_death(tmp_path, monkeypatch,
                                         golden_digest):
    """SIGKILL of a pool worker mid-point: the pid-set watchdog notices,
    the pool is torn down, and the lost points re-run in-process."""
    arm(monkeypatch, tmp_path, "crash@point", select=1)
    result = run_sweep(EXP, SEEDS, OVERRIDES, jobs=2)
    assert result.digest() == golden_digest


def test_run_sweep_persistent_failure_names_the_point(monkeypatch):
    """With no fuse the point fails every retry; the error must name
    the point's describe() and the attempt count."""
    monkeypatch.setenv(faultinject.ENV_VAR, "raise@point")
    monkeypatch.setenv(faultinject.SELECT_ENV_VAR, "2")
    monkeypatch.setenv("REPRO_SWEEP_POINT_RETRIES", "1")
    with pytest.raises(SweepError, match=r"seed=2.*failed 2 times"):
        run_sweep(EXP, SEEDS, OVERRIDES, jobs=1)


# -- fault-plan parsing ------------------------------------------------------


def test_fault_plan_parses_and_rejects():
    plan_ = faultinject.parse_plan("crash@mid-shard, sleep@pre-run:2.5")
    assert [(s.action, s.site, s.arg) for s in plan_] == [
        ("crash", "mid-shard", None), ("sleep", "pre-run", "2.5")]
    with pytest.raises(CampaignError, match="expected action"):
        faultinject.parse_plan("crash")
    with pytest.raises(CampaignError, match="action"):
        faultinject.parse_plan("vanish@pre-run")


def test_fuse_fires_exactly_once(tmp_path, monkeypatch):
    monkeypatch.setenv(faultinject.ENV_VAR, "raise@unit-test-site")
    monkeypatch.setenv(faultinject.FUSE_ENV_VAR, str(tmp_path / "f"))
    with pytest.raises(OSError, match="injected"):
        faultinject.fire("unit-test-site")
    faultinject.fire("unit-test-site")  # fuse claimed: never again
