"""The warm-start protocol: reset ≡ rebuild, digest for digest.

A sweep worker constructs one experiment world per configuration and
``QuantoNode.reset(seed)``s it per grid point instead of rebuilding.  The
contract gated here is *bit-identity*: a warm (reset) run must render the
same bytes as a cold (freshly constructed) run at every seed, in any
interleaving — otherwise warm sweeps would silently diverge from the
determinism digests the whole pipeline is keyed on.
"""

import hashlib

import pytest

from repro.experiments.common import (
    WARM_START_ENV_VAR,
    clear_warm_worlds,
    run_blink,
    run_experiment,
    warm_start_enabled,
)
from repro.units import seconds

SHORT_NS = str(seconds(4))

#: Experiments exercising the warm path with meaningfully different
#: worlds: noise knobs (seed-dependent construction), defaults, and the
#: three-configuration logging ablation (ram / drain / counters).
WARM_EXPERIMENTS = [
    ("table3", {"duration_ns": SHORT_NS, "device_variation": "0.03",
                "icount_jitter_pulses": "1.5"}),
    ("table3", {"duration_ns": SHORT_NS}),
    ("ablation_weighting", {}),
]


def _digest(exp_id, seed, overrides):
    rendered = run_experiment(exp_id, seed=seed, overrides=overrides).render()
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


@pytest.fixture
def cold(monkeypatch):
    """Force cold constructions (the reference behaviour)."""
    monkeypatch.setenv(WARM_START_ENV_VAR, "0")
    yield


@pytest.mark.parametrize("exp_id,overrides", WARM_EXPERIMENTS)
def test_warm_reset_equals_cold_rebuild(exp_id, overrides, monkeypatch):
    """The tentpole equivalence: for several seeds, a warm world reset
    per seed renders byte-identically to a cold rebuild per seed."""
    seeds = (0, 3, 11)
    monkeypatch.setenv(WARM_START_ENV_VAR, "0")
    cold_digests = [_digest(exp_id, s, overrides) for s in seeds]
    monkeypatch.setenv(WARM_START_ENV_VAR, "1")
    clear_warm_worlds()
    warm_digests = [_digest(exp_id, s, overrides) for s in seeds]
    assert warm_digests == cold_digests
    # Re-running a seed on the (now well-used) warm world still matches.
    assert _digest(exp_id, seeds[0], overrides) == cold_digests[0]


def test_warm_reset_survives_config_interleaving(monkeypatch):
    """Alternating configurations must not leak state between worlds
    (each configuration has its own cached world; both keep resetting)."""
    noisy = {"duration_ns": SHORT_NS, "device_variation": "0.05"}
    clean = {"duration_ns": SHORT_NS}
    monkeypatch.setenv(WARM_START_ENV_VAR, "0")
    want = {
        ("noisy", seed): _digest("table3", seed, noisy) for seed in (0, 1)
    } | {
        ("clean", seed): _digest("table3", seed, clean) for seed in (0, 1)
    }
    monkeypatch.setenv(WARM_START_ENV_VAR, "1")
    clear_warm_worlds()
    for seed in (0, 1, 0, 1):
        assert _digest("table3", seed, noisy) == want[("noisy", seed)]
        assert _digest("table3", seed, clean) == want[("clean", seed)]


def test_warm_hit_reuses_the_world_object(monkeypatch):
    """A same-configuration rerun hands back the same (reset) objects —
    the documented aliasing contract, and the proof construction was
    actually skipped."""
    monkeypatch.setenv(WARM_START_ENV_VAR, "1")  # even on the cold CI leg
    clear_warm_worlds()
    node_a, _, sim_a = run_blink(0, duration_ns=seconds(2))
    node_b, _, sim_b = run_blink(1, duration_ns=seconds(2))
    assert node_a is node_b and sim_a is sim_b


def test_warm_start_env_gate(monkeypatch):
    monkeypatch.setenv(WARM_START_ENV_VAR, "0")
    assert not warm_start_enabled()
    clear_warm_worlds()
    node_a, _, _ = run_blink(0, duration_ns=seconds(2))
    node_b, _, _ = run_blink(0, duration_ns=seconds(2))
    assert node_a is not node_b
    monkeypatch.setenv(WARM_START_ENV_VAR, "1")
    assert warm_start_enabled()


def test_uncacheable_configs_run_cold():
    """A custom draw profile cannot be value-compared, so those runs
    never enter the warm cache."""
    from repro.hw.catalog import default_actual_profile
    from repro.hw.platform import PlatformConfig

    clear_warm_worlds()
    profile = default_actual_profile()
    config = PlatformConfig(profile=profile)
    node_a, _, _ = run_blink(0, duration_ns=seconds(2), platform=config)
    node_b, _, _ = run_blink(0, duration_ns=seconds(2), platform=config)
    assert node_a is not node_b


def test_networked_node_refuses_reset():
    from repro.net.channel import RadioChannel
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngFactory
    from repro.tos.node import NodeConfig, QuantoNode

    sim = Simulator()
    channel = RadioChannel(sim)
    node = QuantoNode(sim, NodeConfig(node_id=1), channel=channel,
                      rng_factory=RngFactory(0))
    with pytest.raises(RuntimeError):
        node.reset(1)


def test_reset_drops_run_registered_activities():
    """Application activities registered during a run are gone after the
    reset, so the next run re-registers them into the same id space."""
    clear_warm_worlds()
    node, _, _ = run_blink(0, duration_ns=seconds(2))
    known_after_run = dict(node.registry.known_ids())
    assert "Red" in known_after_run.values()
    node.reset(0)
    known_after_reset = node.registry.known_ids()
    assert "Red" not in known_after_reset.values()
    # And a rerun brings them back under the same ids.
    node.boot(lambda n: None)
    rerun_ids = node.registry.known_ids()
    assert set(rerun_ids) <= set(known_after_run)
