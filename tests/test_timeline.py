"""Timeline reconstruction: power intervals, activity segments, binds."""

import struct

import pytest

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    ENTRY_STRUCT,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
    decode_log,
)
from repro.core.timeline import TimelineBuilder

RED = ActivityLabel(1, 1).encode()
BLUE = ActivityLabel(1, 2).encode()
PROXY = ActivityLabel(1, 0xC8).encode()
PROXY2 = ActivityLabel(1, 0xC9).encode()
REMOTE = ActivityLabel(4, 1).encode()


def _entries(*rows):
    """rows: (type, res_id, time_us, icount, value)."""
    raw = b"".join(ENTRY_STRUCT.pack(*row) for row in rows)
    return decode_log(raw)


def test_power_intervals_basic():
    entries = _entries(
        (TYPE_BOOT, 0, 0, 0, 0),
        (TYPE_BOOT, 1, 0, 0, 0),
        (TYPE_POWERSTATE, 1, 100, 10, 1),   # LED on at 100 us
        (TYPE_POWERSTATE, 1, 300, 40, 0),   # LED off at 300 us
    )
    builder = TimelineBuilder(entries, end_time_ns=400_000)
    intervals = builder.power_intervals()
    # Two measured intervals; time past the last record (300..400 us) is
    # unobservable energy-wise and is not fabricated.
    assert len(intervals) == 2
    first, second = intervals
    assert (first.t0_ns, first.t1_ns, first.pulses) == (0, 100_000, 10)
    assert dict(first.states) == {0: 0, 1: 0}
    assert dict(second.states)[1] == 1
    assert second.pulses == 30
    assert second.t1_ns == 300_000


def test_power_interval_energy():
    entries = _entries(
        (TYPE_BOOT, 0, 0, 0, 0),
        (TYPE_POWERSTATE, 0, 100, 12, 1),
    )
    builder = TimelineBuilder(entries, end_time_ns=200_000)
    interval = builder.power_intervals()[0]
    assert interval.energy_j(8.33e-6) == pytest.approx(12 * 8.33e-6)
    assert interval.state_of(0) == 0
    assert interval.state_of(99) is None


def test_simultaneous_changes_fold_into_one_boundary():
    entries = _entries(
        (TYPE_BOOT, 0, 0, 0, 0),
        (TYPE_BOOT, 1, 0, 0, 0),
        (TYPE_POWERSTATE, 0, 100, 5, 1),
        (TYPE_POWERSTATE, 1, 100, 5, 1),  # same microsecond
        (TYPE_POWERSTATE, 0, 200, 9, 0),
    )
    builder = TimelineBuilder(entries, end_time_ns=300_000)
    intervals = builder.power_intervals()
    # [0,100) both off; [100,200) both on (one boundary, not two).
    assert len(intervals) == 2
    assert dict(intervals[1].states) == {0: 1, 1: 1}


def test_activity_segments_basic():
    entries = _entries(
        (TYPE_ACT_CHANGE, 0, 0, 0, RED),
        (TYPE_ACT_CHANGE, 0, 100, 0, BLUE),
        (TYPE_ACT_CHANGE, 0, 250, 0, RED),
    )
    builder = TimelineBuilder(entries, end_time_ns=400_000)
    segments = builder.activity_segments(0)
    assert [(s.t0_ns, s.t1_ns, s.label.encode()) for s in segments] == [
        (0, 100_000, RED),
        (100_000, 250_000, BLUE),
        (250_000, 400_000, RED),
    ]


def test_bind_marks_proxy_segment():
    entries = _entries(
        (TYPE_ACT_CHANGE, 0, 0, 0, PROXY),
        (TYPE_ACT_BIND, 0, 100, 0, REMOTE),
        (TYPE_ACT_CHANGE, 0, 200, 0, RED),
    )
    builder = TimelineBuilder(entries, end_time_ns=300_000)
    segments = builder.activity_segments(0)
    proxy_seg = segments[0]
    assert proxy_seg.label.encode() == PROXY
    assert proxy_seg.bound_to is not None
    assert proxy_seg.bound_to.encode() == REMOTE
    assert proxy_seg.effective_label.encode() == REMOTE
    # The bound span itself is charged to the remote activity.
    assert segments[1].label.encode() == REMOTE


def test_bind_resolves_all_unresolved_proxy_segments():
    """Multiple proxy spans (interrupt, SPI pairs) before the decode bind:
    all of them belong to the bound activity."""
    entries = _entries(
        (TYPE_ACT_CHANGE, 0, 0, 0, PROXY),
        (TYPE_ACT_CHANGE, 0, 50, 0, RED),      # interrupted by other work
        (TYPE_ACT_CHANGE, 0, 100, 0, PROXY),   # proxy again
        (TYPE_ACT_BIND, 0, 150, 0, REMOTE),    # decode: bind proxy
    )
    builder = TimelineBuilder(entries, end_time_ns=200_000)
    segments = builder.activity_segments(0)
    proxy_segments = [s for s in segments if s.label.encode() == PROXY]
    assert len(proxy_segments) == 2
    assert all(s.effective_label.encode() == REMOTE for s in proxy_segments)


def test_bind_chains_resolve_transitively():
    """UART proxy bound to RX proxy bound to the remote activity."""
    entries = _entries(
        (TYPE_ACT_CHANGE, 0, 0, 0, PROXY2),   # int_UART0RX
        (TYPE_ACT_BIND, 0, 50, 0, PROXY),     # bound to pxy_RX
        (TYPE_ACT_BIND, 0, 100, 0, REMOTE),   # pxy_RX bound to 4:...
    )
    builder = TimelineBuilder(entries, end_time_ns=150_000)
    segments = builder.activity_segments(0)
    uart_seg = segments[0]
    assert uart_seg.label.encode() == PROXY2
    assert uart_seg.effective_label.encode() == REMOTE


def test_multi_activity_segments():
    entries = _entries(
        (TYPE_ACT_ADD, 9, 0, 0, RED),
        (TYPE_ACT_ADD, 9, 100, 0, BLUE),
        (TYPE_ACT_REMOVE, 9, 200, 0, RED),
    )
    builder = TimelineBuilder(entries, end_time_ns=300_000)
    segments = builder.multi_activity_segments(9)
    sets = [frozenset(l.encode() for l in s.labels) for s in segments]
    assert sets == [
        frozenset({RED}),
        frozenset({RED, BLUE}),
        frozenset({BLUE}),
    ]


def test_device_kind_inference():
    entries = _entries(
        (TYPE_ACT_CHANGE, 0, 0, 0, RED),
        (TYPE_ACT_ADD, 9, 0, 0, RED),
    )
    builder = TimelineBuilder(entries, end_time_ns=100_000)
    assert builder.single_device_ids() == [0]
    assert builder.multi_device_ids() == [9]


def test_empty_log():
    builder = TimelineBuilder([], end_time_ns=0)
    assert builder.power_intervals() == []
    assert builder.activity_segments(0) == []
    assert builder.multi_activity_segments(9) == []
