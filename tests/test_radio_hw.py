"""The CC2420-class radio hardware model."""

import pytest

from repro.errors import HardwareError
from repro.hw.catalog import default_actual_profile
from repro.hw.power import PowerRail
from repro.hw.radio import (
    CALIBRATION_NS,
    OSC_DELAY_NS,
    PREAMBLE_NS,
    Frame,
    Radio,
    VREG_DELAY_NS,
)
from repro.net.channel import RadioChannel
from repro.sim.engine import Simulator
from repro.units import ma, ms


def _radio_pair():
    sim = Simulator()
    channel = RadioChannel(sim)
    radios = []
    for node_id in (1, 2):
        rail = PowerRail(sim, voltage=3.0)
        radio = Radio(sim, rail, default_actual_profile(), node_id)
        radio.attach(channel)
        radios.append((radio, rail))
    return sim, channel, radios


def _power_up(sim, radio, then=None):
    def osc_done():
        if then:
            then()

    radio.vreg_on(lambda: radio.osc_on(osc_done))


def test_power_up_sequence_and_timing():
    sim, channel, radios = _radio_pair()
    radio, rail = radios[0]
    states = []
    radio.set_state_listener(states.append)
    done = []
    _power_up(sim, radio, lambda: done.append(sim.now))
    sim.run()
    assert states == ["VREG", "IDLE"]
    assert done == [VREG_DELAY_NS + OSC_DELAY_NS]


def test_rx_on_draws_listen_current():
    sim, channel, radios = _radio_pair()
    radio, rail = radios[0]
    _power_up(sim, radio, radio.rx_on)
    sim.run()
    assert radio.state == "RX"
    # listen path + control path + regulator
    expected = ma(18.46) + 426e-6 + 22e-6
    assert rail.current() == pytest.approx(expected, rel=1e-6)


def test_frame_length_and_airtime():
    frame = Frame(src=1, dst=2, am_type=0x42, payload=b"hello")
    # 11 header + 2 activity + 5 payload + 2 CRC = 20
    assert frame.length == 20
    assert frame.airtime_ns() == (1 + 20) * 32_000


def test_transmit_delivers_to_listener():
    sim, channel, radios = _radio_pair()
    tx, _ = radios[0]
    rx, _ = radios[1]
    got = []
    rx.on_rx_done = lambda: got.append(rx.read_rx_fifo())
    _power_up(sim, rx, rx.rx_on)
    frame = Frame(src=1, dst=2, am_type=7, payload=b"x" * 10, activity=0x0105)

    def send():
        tx.load_tx_fifo(frame)
        tx.strobe_tx()

    _power_up(sim, tx, send)
    sim.run()
    assert len(got) == 1
    assert got[0].activity == 0x0105
    assert tx.frames_sent == 1
    assert rx.frames_received == 1
    # CC2420 falls back to RX after transmitting.
    assert tx.state == "RX"


def test_sfd_fires_after_preamble():
    sim, channel, radios = _radio_pair()
    tx, _ = radios[0]
    rx, _ = radios[1]
    sfd_times = []
    rx.on_sfd = lambda: sfd_times.append(sim.now)
    _power_up(sim, rx, rx.rx_on)
    frame = Frame(src=1, dst=2, am_type=7, payload=b"")
    tx_start = []

    def send():
        tx.load_tx_fifo(frame)
        tx.strobe_tx()
        tx_start.append(sim.now)

    _power_up(sim, tx, send)
    sim.run()
    assert len(sfd_times) == 1
    assert sfd_times[0] == tx_start[0] + CALIBRATION_NS + PREAMBLE_NS


def test_rx_while_not_listening_misses_frame():
    sim, channel, radios = _radio_pair()
    tx, _ = radios[0]
    rx, _ = radios[1]
    _power_up(sim, rx)  # IDLE, not RX
    frame = Frame(src=1, dst=2, am_type=7, payload=b"")

    def send():
        tx.load_tx_fifo(frame)
        tx.strobe_tx()

    _power_up(sim, tx, send)
    sim.run()
    assert rx.frames_received == 0


def test_channel_mismatch_blocks_delivery():
    sim, channel, radios = _radio_pair()
    tx, _ = radios[0]
    rx, _ = radios[1]
    rx.set_channel_number(26)
    tx.set_channel_number(17)
    _power_up(sim, rx, rx.rx_on)
    frame = Frame(src=1, dst=2, am_type=7, payload=b"")

    def send():
        tx.load_tx_fifo(frame)
        tx.strobe_tx()

    _power_up(sim, tx, send)
    sim.run()
    assert rx.frames_received == 0


def test_cca_sees_other_transmission():
    sim, channel, radios = _radio_pair()
    tx, _ = radios[0]
    rx, _ = radios[1]
    results = []
    _power_up(sim, rx, rx.rx_on)
    frame = Frame(src=1, dst=2, am_type=7, payload=b"x" * 50)

    def send():
        tx.load_tx_fifo(frame)
        tx.strobe_tx()

    _power_up(sim, tx, send)
    # Sample CCA mid-flight (TX spans roughly 1.6–3.9 ms).
    sim.at(ms(3), lambda: results.append(rx.cca_clear()))
    sim.run()
    assert results == [False]
    # After the frame, the channel is clear again.
    assert rx.cca_clear() is True


def test_illegal_transitions_raise():
    sim, channel, radios = _radio_pair()
    radio, _ = radios[0]
    with pytest.raises(HardwareError):
        radio.osc_on(lambda: None)  # vreg off
    with pytest.raises(HardwareError):
        radio.rx_on()
    with pytest.raises(HardwareError):
        radio.strobe_tx()
    with pytest.raises(HardwareError):
        radio.cca_clear()
    with pytest.raises(HardwareError):
        radio.read_rx_fifo()
    with pytest.raises(HardwareError):
        radio.set_channel_number(27)


def test_vreg_off_aborts_everything():
    sim, channel, radios = _radio_pair()
    radio, rail = radios[0]
    _power_up(sim, radio, radio.rx_on)
    sim.run()
    radio.vreg_off()
    assert radio.state == "OFF"
    assert rail.current() == pytest.approx(0.0, abs=1e-9)
