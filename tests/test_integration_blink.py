"""End-to-end Blink: the paper's Section 4.1/4.2.1 numbers as assertions.

These tests close the full loop — instrumented app, driver power-state
signalling, 12-byte logging with the 102-cycle cost, iCount quantization,
offline interval reconstruction, the weighted regression, and the energy
map — and check the results against both the paper's tables and the
simulation's hidden ground truth.
"""

import pytest

from repro.units import seconds, to_mj


def test_regression_recovers_actual_led_draws(blink_run):
    sim, node, app = blink_run
    regression = node.regression()
    # Ground truth: LED0 2.50, LED1 2.235, LED2 0.83 mA (NOT the 4.3/3.7/
    # 1.7 datasheet values) — the regression must find the real hardware.
    assert regression.current_ma("LED0") == pytest.approx(2.50, rel=0.02)
    assert regression.current_ma("LED1") == pytest.approx(2.235, rel=0.02)
    assert regression.current_ma("LED2") == pytest.approx(0.83, rel=0.02)
    assert regression.const_current_ma == pytest.approx(0.82, rel=0.03)
    # CPU active delta: truth 1.43 mA; short intervals make it noisier.
    assert regression.current_ma("CPU") == pytest.approx(1.43, rel=0.15)


def test_energy_by_activity_matches_table3d(blink_run):
    sim, node, app = blink_run
    emap = node.energy_map()
    by_activity = {k: to_mj(v) for k, v in emap.energy_by_activity().items()}
    assert by_activity["1:Red"] == pytest.approx(180.78, rel=0.02)
    assert by_activity["1:Green"] == pytest.approx(161.10, rel=0.02)
    assert by_activity["1:Blue"] == pytest.approx(59.86, rel=0.02)
    assert by_activity["Const."] == pytest.approx(119.26, rel=0.04)
    assert 0.05 < by_activity["1:VTimer"] < 0.5
    assert 0.01 < by_activity["1:int_TIMERB0"] < 0.1


def test_total_energy_matches_ground_truth(blink_run):
    sim, node, app = blink_run
    emap = node.energy_map()
    truth = node.platform.rail.energy()
    # Metered (quantized) total within a whisker of the true energy ...
    assert emap.metered_energy_j == pytest.approx(truth, rel=0.01)
    # ... and the reconstruction closes on the meter (paper: 0.004 %).
    assert emap.accounting_error < 0.001


def test_led_energy_against_per_sink_ground_truth(blink_run):
    """The strongest check: per-component attributed energy vs the hidden
    per-sink integrator nobody in the pipeline can see."""
    sim, node, app = blink_run
    emap = node.energy_map()
    by_hw = emap.energy_by_component()
    for sink in ("LED0", "LED1", "LED2"):
        truth = node.platform.rail.sink_energy(sink)
        assert by_hw[sink] == pytest.approx(truth, rel=0.02), sink


def test_cpu_activity_time_structure(blink_run):
    sim, node, app = blink_run
    emap = node.energy_map()
    cpu_times = emap.time_by_activity("CPU")
    # Red toggles twice as often as Green, four times as often as Blue;
    # CPU time per activity reflects that overhead (paper Table 3a).
    red = cpu_times["1:Red"]
    green = cpu_times["1:Green"]
    blue = cpu_times["1:Blue"]
    assert red == pytest.approx(2 * green, rel=0.15)
    assert red == pytest.approx(4 * blue, rel=0.25)
    # VTimer bookkeeping dominates the non-app CPU time.
    assert cpu_times["1:VTimer"] > red
    # And the CPU is asleep almost always.
    idle = cpu_times["1:Idle"]
    assert idle > 0.995 * seconds(48)


def test_log_volume_in_paper_regime(blink_run):
    sim, node, app = blink_run
    # Paper: 597 messages over 48 s.
    assert 450 <= node.logger.records_written <= 700
    # 12 bytes each.
    assert node.logger.ram_bytes_used() == \
        node.logger.records_written * 12


def test_idle_energy_is_negligible(blink_run):
    sim, node, app = blink_run
    emap = node.energy_map()
    idle_mj = to_mj(emap.energy_by_activity().get("1:Idle", 0.0))
    # Paper Table 3d: Idle gets 0.00 mJ (its draw is the Const. floor).
    assert abs(idle_mj) < 0.5


def test_deterministic_reproduction(blink_run):
    """The same seed reproduces the same log, byte for byte."""
    from repro.apps.blink import BlinkApp
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngFactory
    from repro.tos.node import NodeConfig, QuantoNode

    sim, node, app = blink_run
    sim2 = Simulator()
    node2 = QuantoNode(sim2, NodeConfig(node_id=1),
                       rng_factory=RngFactory(0))
    app2 = BlinkApp()
    node2.boot(app2.start)
    sim2.run(until=seconds(48))
    node2.mark_log_end()
    # blink_run's node has already been finalized by earlier tests.
    node.mark_log_end()
    assert node2.logger.raw_bytes() == node.logger.raw_bytes()
