"""The discrete-event kernel: ordering, cancellation, run semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(300, order.append, "c")
    sim.at(100, order.append, "a")
    sim.at(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.at(50, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(100, lambda: sim.after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    fired = []
    event = sim.at(100, fired.append, 1)
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.at(100, fired.append, "early")
    sim.at(5_000, fired.append, "late")
    sim.run(until=1_000)
    assert fired == ["early"]
    assert sim.now == 1_000
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.at(1_000, fired.append, "boundary")
    sim.run(until=1_000)
    assert fired == ["boundary"]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.after(1, loop)

    sim.after(1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.at(10, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_events_executed_counter():
    sim = Simulator()
    for t in (10, 20, 30):
        sim.at(t, lambda: None)
    sim.run()
    assert sim.events_executed == 3


def test_call_now_runs_after_queued_events_at_same_instant():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_now(lambda: order.append("soon"))

    sim.at(100, first)
    sim.at(100, order.append, "second")
    sim.run()
    assert order == ["first", "second", "soon"]
