"""The discrete-event kernel: ordering, cancellation, run semantics."""

import heapq
import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import NEAR_WINDOW_NS, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(300, order.append, "c")
    sim.at(100, order.append, "a")
    sim.at(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.at(50, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(100, lambda: sim.after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    fired = []
    event = sim.at(100, fired.append, 1)
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.at(100, fired.append, "early")
    sim.at(5_000, fired.append, "late")
    sim.run(until=1_000)
    assert fired == ["early"]
    assert sim.now == 1_000
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.at(1_000, fired.append, "boundary")
    sim.run(until=1_000)
    assert fired == ["boundary"]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.after(1, loop)

    sim.after(1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.at(10, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_events_executed_counter():
    sim = Simulator()
    for t in (10, 20, 30):
        sim.at(t, lambda: None)
    sim.run()
    assert sim.events_executed == 3


def test_call_now_runs_after_queued_events_at_same_instant():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_now(lambda: order.append("soon"))

    sim.at(100, first)
    sim.at(100, order.append, "second")
    sim.run()
    assert order == ["first", "second", "soon"]


# -- calendar-queue semantics -------------------------------------------------


def test_float_time_cannot_truncate_into_the_past():
    """Regression: at() used to coerce to int *after* the past-guard, so
    a float a hair above now passed the check and then truncated below
    it.  The coercion now happens first."""
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    assert sim.now == 100
    with pytest.raises(SimulationError):
        sim.at(100.5 - 1.0, lambda: None)  # int() would give 99 < now
    # A float that still lands at now (or later) is fine.
    event = sim.at(100.9, lambda: None)
    assert event.time == 100


def test_fifo_preserved_across_the_bucket_overflow_boundary():
    """Events for one timestamp scheduled on both sides of the near
    horizon (some straight into a bucket, some migrated from the
    overflow heap) must still run in scheduling order."""
    sim = Simulator()
    far = 5 * NEAR_WINDOW_NS
    order = []
    sim.at(far, order.append, "overflow-first")   # beyond horizon
    sim.at(far, order.append, "overflow-second")  # beyond horizon

    def reschedule_same_instant():
        # By now the horizon has advanced past `far`: these go straight
        # into the bucket, behind the migrated pair.
        sim.at(far, order.append, "bucket-third")

    sim.at(far - NEAR_WINDOW_NS // 2, reschedule_same_instant)
    sim.run()
    assert order == ["overflow-first", "overflow-second", "bucket-third"]


def test_cancel_after_fire_is_safe_and_keeps_pending_exact():
    sim = Simulator()
    fired = []
    event = sim.at(10, fired.append, 1)
    later = sim.at(20, fired.append, 2)
    assert sim.pending() == 2
    assert sim.step()
    assert fired == [1]
    event.cancel()  # already fired: no-op, must not corrupt the count
    event.cancel()  # twice is fine too
    assert sim.pending() == 1
    later.cancel()
    assert sim.pending() == 0
    later.cancel()  # double-cancel of a queued event counts once
    assert sim.pending() == 0
    assert not sim.step()


def test_pending_counts_live_events_without_scanning():
    sim = Simulator()
    events = [sim.at(t, lambda: None) for t in (10, 20, 5 * NEAR_WINDOW_NS)]
    assert sim.pending() == 3
    events[1].cancel()
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0


def test_cancelled_far_future_event_never_fires_after_migration():
    sim = Simulator()
    fired = []
    far = 3 * NEAR_WINDOW_NS
    doomed = sim.at(far, fired.append, "doomed")
    sim.at(far, fired.append, "kept")
    doomed.cancel()
    sim.run()
    assert fired == ["kept"]


def test_calendar_queue_matches_reference_heap_on_random_workloads():
    """Property test: the calendar queue's execution order is identical
    to a plain (time, seq) binary heap — the pre-optimization scheduler —
    on randomized workloads of bursty same-instant events, far-future
    arms, cancellations, and in-callback rescheduling."""
    rng = random.Random(20080101)
    for _ in range(20):
        plan = [
            (rng.choice((0, 1, 2, 50, 999, NEAR_WINDOW_NS * rng.randint(1, 4))),
             rng.random() < 0.2)  # (delay, cancel it?)
            for _ in range(60)
        ]
        reschedules = rng.sample(range(60), 10)

        def run_reference():
            order = []
            heap = []
            seq = [0]
            now = [0]

            def push(t, tag):
                heapq.heappush(heap, (t, seq[0], tag))
                seq[0] += 1
                return (t, seq[0] - 1)

            cancelled = set()
            for index, (delay, cancel) in enumerate(plan):
                handle = push(delay, index)
                if cancel:
                    cancelled.add(handle[1])
            while heap:
                t, s, tag = heapq.heappop(heap)
                if s in cancelled:
                    continue
                now[0] = t
                order.append((t, tag))
                if tag in reschedules:
                    push(t + plan[tag][0] + 7, ("re", tag))
            return order

        def run_calendar():
            order = []
            sim = Simulator()

            def fire(tag):
                order.append((sim.now, tag))
                if tag in reschedules:
                    sim.at(sim.now + plan[tag][0] + 7,
                           fire, ("re", tag))

            for index, (delay, cancel) in enumerate(plan):
                event = sim.at(delay, fire, index)
                if cancel:
                    event.cancel()
            sim.run()
            return order

        assert run_calendar() == run_reference()
