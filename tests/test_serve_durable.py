"""Durable live ingest: WAL, checkpoints, crash-restore, resume.

The contract under test: with a ``state_dir``, every ingest stream is
write-ahead journaled and checkpointed, so a server that dies without
warning restarts into the exact per-node state it held — and a client
speaking the resume handshake replays only the tail, ending with a map
**byte-identical** to the uninterrupted offline ``build_energy_map``.
Also covered: torn/corrupt journal tails, corrupt-checkpoint fallback
to full replay, graceful-shutdown suspend, quarantine isolation of one
malformed stream, overload shedding, the typed sync-wrapper errors, and
the ``--expect-nodes`` exit code.
"""

import asyncio
import json
import os
import pickle
import socket
import threading
from pathlib import Path

import pytest

from repro.core.accounting import WindowedAccumulator, build_energy_map
from repro.core.logger import WireDecoder
from repro.errors import ServeError
from repro.experiments.common import run_blink
from repro.serve import (
    IngestServer,
    NodeJournal,
    NodeSession,
    final_map,
    hello_for_node,
    query_sync,
    stream_node_sync,
    stream_raw,
)
from repro.serve.journal import JOURNAL_MAGIC
from repro.serve.protocol import (
    INGEST_VERB,
    decode_json_line,
    encode_json_line,
    is_ack_line,
)
from repro.sim.faultinject import tear_tail
from repro.tos.node import COMPONENT_NAMES
from repro.units import seconds


def offline_map(node):
    timeline = node.timeline()
    regression = node.regression(timeline)
    return build_energy_map(
        timeline, regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        backend="streaming",
    )


def assert_maps_identical(served, offline):
    assert list(served.energy_j) == list(offline.energy_j)
    assert served.energy_j == offline.energy_j
    assert list(served.time_ns) == list(offline.time_ns)
    assert served.time_ns == offline.time_ns
    assert served.metered_energy_j == offline.metered_energy_j
    assert served.reconstructed_energy_j == offline.reconstructed_energy_j
    assert served.span_ns == offline.span_ns


@pytest.fixture(scope="module")
def blink():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    return node


@pytest.fixture(scope="module")
def blink2():
    node, _app, _sim = run_blink(seed=7, duration_ns=seconds(8), node_id=2)
    return node


@pytest.fixture(scope="module")
def offline(blink):
    return offline_map(blink)


@pytest.fixture()
def sock(tmp_path):
    return str(tmp_path / "ingest.sock")


async def _ack_hello_prefix(sock_path, hello, prefix):
    """Open a raw resume-handshake ingest connection and write a prefix
    without EOF (a stream caught mid-flight)."""
    reader, writer = await asyncio.open_unix_connection(sock_path)
    wire = dict(hello)
    wire["ack"] = True
    writer.write(INGEST_VERB.encode() + b" " + encode_json_line(wire))
    await writer.drain()
    handshake = decode_json_line(await reader.readline(), "handshake")
    writer.write(prefix)
    await writer.drain()
    return reader, writer, handshake


async def _final_reply(reader):
    """The first non-ack reply line."""
    while True:
        line = await reader.readline()
        assert line, "connection closed without a reply"
        reply = decode_json_line(line, "reply")
        if not is_ack_line(reply):
            return reply


# -- journal mechanics -------------------------------------------------------


def test_journal_round_trip(tmp_path):
    journal = NodeJournal(tmp_path, 7)
    journal.create({"node_id": 7, "greeting": True})
    assert journal.append_chunk(b"abcd") == 4
    assert journal.append_chunk(b"") == 4  # empty chunks are legal
    assert journal.append_chunk(b"efghij") == 10
    journal.mark_complete({"entries": 3})
    journal.close()

    contents = journal.load()
    assert contents.hello == {"node_id": 7, "greeting": True}
    assert contents.chunks == [b"abcd", b"", b"efghij"]
    assert contents.payload_bytes == 10
    assert contents.complete == {"entries": 3}
    assert contents.valid_end == journal.journal_path.stat().st_size


def test_torn_tail_is_truncated_on_reopen(tmp_path):
    journal = NodeJournal(tmp_path, 1)
    journal.create({"node_id": 1})
    journal.append_chunk(b"first")
    journal.append_chunk(b"second")
    journal.close()
    tear_tail(journal.journal_path, drop=3)  # crash mid-append

    contents = journal.load()
    assert contents.chunks == [b"first"]
    assert contents.complete is None
    # Reopen truncates the torn bytes: the next record lands cleanly.
    journal.reopen_for_append(contents)
    assert journal.append_chunk(b"again") == 10
    journal.close()
    assert journal.load().chunks == [b"first", b"again"]


def test_corrupt_record_stops_the_scan(tmp_path):
    journal = NodeJournal(tmp_path, 1)
    journal.create({"node_id": 1})
    journal.append_chunk(b"good")
    at_bad = journal.journal_path.stat().st_size
    journal.append_chunk(b"bad!")
    journal.append_chunk(b"never seen")
    journal.close()
    blob = bytearray(journal.journal_path.read_bytes())
    blob[at_bad + 9] ^= 0xFF  # flip a payload byte: CRC now fails
    journal.journal_path.write_bytes(bytes(blob))
    contents = journal.load()
    assert contents.chunks == [b"good"]
    assert contents.valid_end == at_bad


def test_headerless_journal_is_unrecoverable(tmp_path):
    path = tmp_path / "node-5.waj"
    path.write_bytes(b"not a journal at all")
    assert NodeJournal(tmp_path, 5).load() is None
    assert NodeSession.restore(tmp_path, 5, retain=8) is None


def test_replay_slices_mid_record(tmp_path):
    journal = NodeJournal(tmp_path, 1)
    journal.create({"node_id": 1})
    journal.append_chunk(b"abcd")
    journal.append_chunk(b"efgh")
    journal.close()
    contents = journal.load()
    assert list(contents.replay(0)) == [b"abcd", b"efgh"]
    assert list(contents.replay(2)) == [b"cd", b"efgh"]
    assert list(contents.replay(4)) == [b"efgh"]
    assert list(contents.replay(6)) == [b"gh"]
    assert list(contents.replay(8)) == []
    for bad in (-1, 9):
        with pytest.raises(ServeError, match="replay offset"):
            list(contents.replay(bad))


def test_scan_dir_finds_node_journals(tmp_path):
    for node_id in (3, 1):
        journal = NodeJournal(tmp_path, node_id)
        journal.create({"node_id": node_id})
        journal.close()
    (tmp_path / "stray.txt").write_text("ignore me")
    (tmp_path / "node-x.waj").write_text("not a node id")
    assert NodeJournal.scan_dir(tmp_path) == [1, 3]
    assert NodeJournal.scan_dir(tmp_path / "missing") == []


def test_checkpoint_round_trip_and_corruption(tmp_path):
    journal = NodeJournal(tmp_path, 1)
    state = {"schema": 1, "journal_offset": 42, "blob": b"\x00\x01"}
    assert journal.load_checkpoint() is None  # absent
    journal.write_checkpoint(state)
    assert journal.load_checkpoint() == state
    blob = bytearray(journal.checkpoint_path.read_bytes())
    blob[-1] ^= 0xFF
    journal.checkpoint_path.write_bytes(bytes(blob))
    assert journal.load_checkpoint() is None  # CRC fail -> discard
    journal.checkpoint_path.write_bytes(b"garbage")
    assert journal.load_checkpoint() is None


# -- mid-stream snapshots ----------------------------------------------------


def test_mid_stream_checkpoint_restores_bit_identical(blink, offline):
    """The checkpoint payload (decoder snapshot + pickled accumulator),
    round-tripped through bytes at arbitrary cut points, resumes to the
    exact offline map — float bits and key order."""
    hello = hello_for_node(blink, stride_ns=int(seconds(1)))
    raw = bytes(blink.logger.raw_bytes())
    for cut in (0, 5, 600, len(raw) // 2 + 7, len(raw) - 1):
        session = NodeSession(hello, retain=64)
        session.ingest(raw[:cut])
        state = pickle.loads(pickle.dumps(session.checkpoint_state()))
        resumed = NodeSession(hello, retain=64)
        resumed.decoder = WireDecoder.from_snapshot(state["decoder"])
        resumed.accumulator = WindowedAccumulator.restore(
            state["accumulator"])
        resumed.bytes_received = state["journal_offset"]
        resumed.ingest(raw[cut:])
        assert_maps_identical(resumed.finish(), offline)
        assert resumed.bytes_received == len(raw)


def test_restore_from_journal_without_checkpoint(tmp_path, blink, offline):
    """No checkpoint at all: restore replays the whole journal."""
    hello = hello_for_node(blink, stride_ns=int(seconds(1)))
    raw = bytes(blink.logger.raw_bytes())
    cut = 629  # mid-entry
    journal = NodeJournal(tmp_path, 1)
    journal.create(hello)
    for at in range(0, cut, 113):
        journal.append_chunk(raw[at:min(at + 113, cut)])
    journal.close()
    session = NodeSession.restore(tmp_path, 1, retain=64)
    assert session.state == "suspended"
    assert session.bytes_received == cut
    assert session.decoder.pending_bytes == cut % 12
    session.ingest(raw[cut:])
    assert_maps_identical(session.finish(), offline)
    session.journal.close()


# -- crash, restart, resume --------------------------------------------------


def test_crash_restore_resumes_bit_identical(tmp_path, blink, offline):
    """The tentpole, in-process: a server that dies mid-stream (handler
    tasks stop existing, no shutdown path runs) restarts from its state
    dir into the journaled offset; a corrupt checkpoint degrades to
    full-journal replay; the resumed stream's map is byte-identical."""
    state_dir = str(tmp_path / "state")
    sock_path = str(tmp_path / "ingest.sock")
    hello = hello_for_node(blink, stride_ns=int(seconds(1)))
    raw = bytes(blink.logger.raw_bytes())
    cut = 629  # mid-entry, past two 256-byte checkpoint cadences

    async def scenario():
        server_a = IngestServer(state_dir=state_dir, checkpoint_bytes=256)
        await server_a.start_unix(sock_path)
        reader, writer, handshake = await _ack_hello_prefix(
            sock_path, hello, b"")
        assert handshake == {"ok": True, "node_id": 1, "offset": 0,
                             "resumed": False}
        for at in range(0, cut, 97):  # paced: chunks journal separately
            writer.write(raw[at:min(at + 97, cut)])
            await writer.drain()
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.2)  # let the consumer drain everything

        # "SIGKILL": cancel the handlers outright and drop the
        # listeners — no suspend, no parting checkpoint, no reply.
        for task in list(server_a._handlers):
            task.cancel()
        await asyncio.gather(*server_a._handlers, return_exceptions=True)
        for listener in server_a._servers:
            listener.close()
            await listener.wait_closed()
        writer.close()

        # The on-disk truth: a cadence checkpoint strictly mid-prefix,
        # so the restore exercises checkpoint + journal-tail replay.
        ckpt = NodeJournal(state_dir, 1).load_checkpoint()
        assert 0 < ckpt["journal_offset"] < cut

        server_b = IngestServer(state_dir=state_dir, checkpoint_bytes=256)
        assert server_b.restored == 1
        session = server_b.sessions[1]
        assert session.state == "suspended"
        assert session.bytes_received == cut
        await server_b.close()

        # Corrupt the checkpoint: restore falls back to full replay and
        # lands on the identical state.
        ckpt_path = Path(state_dir) / "node-1.ckpt"
        ckpt_path.write_bytes(b"QCKP" + os.urandom(40))
        server_c = IngestServer(state_dir=state_dir, checkpoint_bytes=256)
        assert server_c.sessions[1].state == "suspended"
        assert server_c.sessions[1].bytes_received == cut
        await server_c.start_unix(sock_path)
        try:
            reply = await stream_raw(sock_path, hello, raw,
                                     chunk_size=113, retries=0)
        finally:
            await server_c.close()
        return reply

    reply = asyncio.run(scenario())
    assert reply["ok"]
    assert reply["client"]["resumed_from"] == cut
    assert reply["client"]["reconnects"] == 0
    assert_maps_identical(final_map(reply), offline)


def test_restored_completed_stream_redelivers(tmp_path, blink, offline):
    """A stream that finished before the crash restores as done, counts
    as concluded, and a reconnecting client gets the stored final map
    without re-streaming a byte."""
    state_dir = str(tmp_path / "state")
    sock_path = str(tmp_path / "ingest.sock")
    hello = hello_for_node(blink, stride_ns=int(seconds(1)))
    raw = bytes(blink.logger.raw_bytes())

    async def scenario():
        server_a = IngestServer(state_dir=state_dir)
        await server_a.start_unix(sock_path)
        first = await stream_raw(sock_path, hello, raw, retries=0)
        await server_a.close()

        server_b = IngestServer(state_dir=state_dir)
        assert server_b.restored == 1 and server_b.completed == 1
        assert server_b.sessions[1].state == "done"
        assert server_b._answer({"cmd": "stats"})["restored"] == 1
        await server_b.start_unix(sock_path)
        try:
            again = await stream_raw(sock_path, hello, raw, retries=0)
        finally:
            await server_b.close()
        return first, again

    first, again = asyncio.run(scenario())
    assert first["ok"] and again["ok"]
    assert again["client"]["resumed_from"] == len(raw)  # nothing re-sent
    assert again["entries"] == first["entries"]
    assert_maps_identical(final_map(again), offline)
    assert_maps_identical(final_map(first), offline)


def test_graceful_shutdown_suspends_resumable_stream(tmp_path, blink,
                                                     offline):
    """A resume-capable client caught mid-frame by a graceful shutdown
    is parked (suspended + checkpointed) and told to retry — not failed
    like the legacy protocol — and the restarted server finishes it."""
    state_dir = str(tmp_path / "state")
    sock_path = str(tmp_path / "ingest.sock")
    hello = hello_for_node(blink, stride_ns=int(seconds(1)))
    raw = bytes(blink.logger.raw_bytes())
    prefix = 1207  # 100 entries + 7 torn bytes: mid-frame on purpose

    async def scenario():
        server = IngestServer(state_dir=state_dir)
        await server.start_unix(sock_path)
        serve_task = asyncio.ensure_future(server.serve_forever())
        reader, writer, _ = await _ack_hello_prefix(
            sock_path, hello, raw[:prefix])
        await asyncio.sleep(0.1)  # let the prefix land
        server.request_shutdown()
        await serve_task
        parting = await _final_reply(reader)
        writer.close()
        session = server.sessions[1]
        assert session.state == "suspended"
        assert parting == {"ok": False, "node_id": 1, "retry": True,
                           "error": "server shutting down mid-stream"}
        await server.close()

        server_b = IngestServer(state_dir=state_dir)
        assert server_b.sessions[1].bytes_received == prefix
        await server_b.start_unix(sock_path)
        try:
            reply = await stream_raw(sock_path, hello, raw, retries=0)
        finally:
            await server_b.close()
        return reply

    reply = asyncio.run(scenario())
    assert reply["ok"] and reply["client"]["resumed_from"] == prefix
    assert_maps_identical(final_map(reply), offline)


# -- degradation: quarantine and shedding ------------------------------------


def test_quarantine_isolates_one_malformed_stream(tmp_path, blink, blink2,
                                                  offline, monkeypatch):
    """A stream whose content breaks accounting quarantines that node —
    journal preserved, marker written, reconnects refused — while other
    nodes stream to byte-identical maps and a restart carries the
    quarantine forward."""
    state_dir = str(tmp_path / "state")
    sock_path = str(tmp_path / "ingest.sock")
    hello1 = hello_for_node(blink, stride_ns=int(seconds(1)))
    hello2 = hello_for_node(blink2, stride_ns=int(seconds(1)))
    raw1 = bytes(blink.logger.raw_bytes())
    raw2 = bytes(blink2.logger.raw_bytes())

    real_ingest = NodeSession.ingest

    def poisoned(self, chunk):
        if self.node_id == 2:
            raise ValueError("synthetic decode corruption")
        real_ingest(self, chunk)

    monkeypatch.setattr(NodeSession, "ingest", poisoned)

    async def scenario():
        server = IngestServer(state_dir=state_dir)
        await server.start_unix(sock_path)
        try:
            good = await stream_raw(sock_path, hello1, raw1, retries=0)
            with pytest.raises(ServeError, match="malformed") as info:
                await stream_raw(sock_path, hello2, raw2,
                                 chunk_size=257, retries=3)
            assert not getattr(info.value, "retryable", False)
            # A reconnect is refused outright, journal left for
            # postmortem.
            with pytest.raises(ServeError, match="quarantined"):
                await stream_raw(sock_path, hello2, raw2, retries=0)
        finally:
            await server.close()
        return good, server

    good, server = asyncio.run(scenario())
    assert good["ok"]
    assert_maps_identical(final_map(good), offline)
    assert server.sessions[2].state == "quarantined"

    marker = Path(state_dir) / "node-2.quarantine"
    assert "malformed" in json.loads(marker.read_text())["error"]
    journal_blob = (Path(state_dir) / "node-2.waj").read_bytes()
    assert journal_blob.startswith(JOURNAL_MAGIC)
    assert len(journal_blob) > len(JOURNAL_MAGIC)  # streamed prefix kept

    # Restart: node 1 is done, node 2 still quarantined, both concluded.
    server_b = IngestServer(state_dir=state_dir)
    assert server_b.restored == 2 and server_b.completed == 2
    assert server_b.sessions[1].state == "done"
    assert server_b.sessions[2].state == "quarantined"


def test_overload_sheds_with_retryable_nack(tmp_path, blink, blink2,
                                            offline):
    """Past ``max_streams`` the server NACKs new nodes with an explicit
    retryable shed — and a backing-off client gets in once a slot
    frees."""
    sock_path = str(tmp_path / "ingest.sock")
    hello1 = hello_for_node(blink, stride_ns=int(seconds(1)))
    hello2 = hello_for_node(blink2, stride_ns=int(seconds(1)))
    raw1 = bytes(blink.logger.raw_bytes())
    raw2 = bytes(blink2.logger.raw_bytes())

    async def scenario():
        server = IngestServer(max_streams=1)
        await server.start_unix(sock_path)
        try:
            reader1, writer1, _ = await _ack_hello_prefix(
                sock_path, hello1, raw1[:480])
            await asyncio.sleep(0.05)  # node 1 is attached now
            with pytest.raises(ServeError, match="overloaded") as info:
                await stream_raw(sock_path, hello2, raw2, retries=0)
            assert info.value.retryable
            # With a retry budget the shed is survivable: finish node 1
            # while node 2 backs off.
            task2 = asyncio.ensure_future(
                stream_raw(sock_path, hello2, raw2, retries=8))
            await asyncio.sleep(0.02)
            writer1.write(raw1[480:])
            writer1.write_eof()
            reply1 = await _final_reply(reader1)
            writer1.close()
            reply2 = await task2
        finally:
            await server.close()
        return reply1, reply2

    reply1, reply2 = asyncio.run(scenario())
    assert reply1["ok"] and reply2["ok"]
    assert reply2["client"]["reconnects"] >= 1
    assert_maps_identical(final_map(reply1), offline)


# -- typed sync-wrapper errors -----------------------------------------------


def test_sync_wrappers_surface_typed_errors(tmp_path, blink):
    nowhere = str(tmp_path / "nowhere.sock")
    with pytest.raises(ServeError, match="node 1"):
        stream_node_sync(nowhere, blink, stride_ns=int(seconds(1)),
                         retries=0)
    with pytest.raises(ServeError, match="connection failed"):
        query_sync(nowhere, {"cmd": "stats"})


def test_connection_reset_becomes_serve_error_naming_the_node(tmp_path,
                                                              blink):
    """A server that drops the socket mid-protocol surfaces as a typed
    ServeError carrying the node id — never a bare OSError."""
    path = str(tmp_path / "rude.sock")
    listener = socket.socket(socket.AF_UNIX)
    listener.bind(path)
    listener.listen(1)

    def slam_the_door():
        conn, _ = listener.accept()
        conn.recv(64)
        conn.close()
        listener.close()

    thread = threading.Thread(target=slam_the_door, daemon=True)
    thread.start()
    try:
        with pytest.raises(ServeError, match="node 1"):
            stream_node_sync(path, blink, stride_ns=int(seconds(1)),
                             retries=0)
    finally:
        thread.join(timeout=5)


# -- the CLI exit-code contract ----------------------------------------------


def test_expect_nodes_exits_nonzero_on_a_failed_node(tmp_path, blink):
    """`repro serve --expect-nodes N` must fail loudly when a node
    concluded in a failed state, not just when one never arrived."""
    import subprocess
    import sys

    sock_path = str(tmp_path / "ingest.sock")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", f"unix:{sock_path}", "--expect-nodes", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        assert "listening on" in proc.stdout.readline()
        hello = hello_for_node(blink, stride_ns=int(seconds(1)))
        raw = bytes(blink.logger.raw_bytes())[:-5]  # torn log
        with pytest.raises(ServeError, match="partial entry"):
            asyncio.run(stream_raw(sock_path, hello, raw, resume=False))
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 1
    assert "node 1 ended error" in out
