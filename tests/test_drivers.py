"""Instrumented drivers: LEDs, flash, sensor."""

import pytest

from repro.units import ms, seconds


def test_leds_driver_signals_powerstate_before_pin(node, sim):
    events = []
    node.led_powerstates[0].add_tracker(
        lambda var, value: events.append(("ps", value)))
    node.platform.leds.led(0).set_listener(
        lambda on: events.append(("pin", on)))
    node.boot(lambda n: n.scheduler.post_function(
        lambda: n.leds.led_on(0)))
    sim.run(until=ms(5))
    # Figure 2's ordering: PowerState.set first, then the pin.
    assert events == [("ps", 1), ("pin", True)]


def test_leds_paint_copies_cpu_activity(node, sim):
    red = node.activity("Red")

    def app(n):
        n.cpu_activity.set(red)
        n.leds.paint(1)
        n.leds.led_on(1)

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=ms(5))
    assert node.led_activities[1].get() == red
    node.scheduler.post_function(lambda: node.leds.unpaint(1))
    sim.run(until=ms(10))
    assert node.led_activities[1].get() == node.idle


def test_led_toggle_driver(node, sim):
    node.boot(lambda n: n.scheduler.post_function(
        lambda: n.leds.led_toggle(2)))
    sim.run(until=ms(5))
    assert node.leds.is_on(2)
    node.scheduler.post_function(lambda: node.leds.led_toggle(2))
    sim.run(until=ms(10))
    assert not node.leds.is_on(2)


def test_flash_driver_write_read_roundtrip(node, sim):
    results = []

    def app(n):
        n.flash.write(7, b"quanto", lambda: n.flash.read(
            7, 6, results.append))

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=seconds(1))
    assert results == [b"quanto"]


def test_flash_driver_shadows_power_states(node, sim):
    node.boot(lambda n: n.scheduler.post_function(
        lambda: n.flash.write(1, b"x", lambda: None)))
    sim.run(until=seconds(1))
    values = [e.value for e in node.entries()
              if e.res_id == 5 and e.type_name == "powerstate"]
    # POWER_DOWN -> STANDBY -> WRITE -> STANDBY
    assert values[:3] == [1, 3, 1]


def test_flash_driver_paints_and_binds_activity(node, sim):
    red = node.activity("Red")
    seen = []

    def app(n):
        n.cpu_activity.set(red)
        n.flash.write(2, b"y", lambda: seen.append(n.cpu_activity.get()))

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=seconds(1))
    # Completion ran under the requesting activity.
    assert seen == [red]
    # And the flash device itself was painted red during the write.
    timeline = node.timeline()
    flash_segments = timeline.activity_segments(5)
    painted = [s for s in flash_segments if s.label == red]
    assert painted and painted[0].dt_ns >= ms(2)


def test_sensor_driver_read_and_bind(node, sim):
    red = node.activity("Red")
    got = []

    def app(n):
        n.cpu_activity.set(red)
        n.sensor.read_humidity(
            lambda value: got.append((value, n.cpu_activity.get())))

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=seconds(1))
    assert len(got) == 1
    value, activity = got[0]
    assert 0 <= value <= 100
    assert activity == red


def test_sensor_driver_powerstate_trace(node, sim):
    node.boot(lambda n: n.scheduler.post_function(
        lambda: n.sensor.read_temperature(lambda v: None)))
    sim.run(until=seconds(1))
    values = [e.value for e in node.entries()
              if e.res_id == 6 and e.type_name == "powerstate"]
    assert values[:2] == [1, 0]  # SAMPLE then IDLE


def test_sensor_serializes_via_arbiter(node, sim):
    got = []

    def app(n):
        n.sensor.read_humidity(got.append)
        n.sensor.read_temperature(got.append)  # queued behind humidity

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=seconds(1))
    assert len(got) == 2
