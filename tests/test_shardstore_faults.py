"""Shard store I/O-fault hardening.

The scenario behind the regression tests: a campaign's cache has a good
shard and a good index; one load hits a transient read error mid-scan
(NFS hiccup, EIO).  The old behaviour treated the partial scan as "the
shard is empty" and **rewrote the index from it** — clobbering a good
accelerator and turning every cached point into a miss.  Pinned here:
a faulted scan keeps the entries it already proved, never persists a
partial index, and the next clean load sees everything again.
"""

import builtins
import hashlib

import pytest

from repro.sim.shardstore import (
    INDEX_MAGIC,
    RECORD_HEADER,
    SHARD_MAGIC,
    ShardStore,
)


def key_for(n: int) -> bytes:
    return hashlib.sha256(f"point-{n}".encode()).digest()


def filled_store(tmp_path, count=6):
    store = ShardStore(tmp_path / "exp.shard")
    for n in range(count):
        assert store.store(key_for(n), f"payload-{n}".encode() * 50)
    return store


class FaultyFile:
    """A real file object whose reads start failing after a budget —
    the shape of a transient EIO mid-scan."""

    def __init__(self, fileobj, reads_before_fault):
        self._file = fileobj
        self._remaining = reads_before_fault

    def read(self, *args):
        if self._remaining <= 0:
            raise OSError(5, "injected read fault")
        self._remaining -= 1
        return self._file.read(*args)

    def __getattr__(self, name):
        return getattr(self._file, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return self._file.__exit__(*exc)


class FaultInjector:
    """Patches ``open`` so binary reads of one path draw from a shared
    read budget, then fail with EIO — until :meth:`disarm`."""

    def __init__(self, monkeypatch):
        self._monkeypatch = monkeypatch
        self._state = None

    def arm(self, path, reads_before_fault):
        real_open = builtins.open
        state = self._state = {"path": str(path),
                               "budget": reads_before_fault,
                               "armed": True}

        class SharedBudgetFile(FaultyFile):
            def read(self, *args):
                if state["armed"]:
                    if state["budget"] <= 0:
                        raise OSError(5, "injected read fault")
                    state["budget"] -= 1
                return self._file.read(*args)

        def faulty_open(file, mode="r", *args, **kwargs):
            fileobj = real_open(file, mode, *args, **kwargs)
            if state["armed"] and str(file) == state["path"] \
                    and "r" in mode and "b" in mode:
                return SharedBudgetFile(fileobj, 0)
            return fileobj

        self._monkeypatch.setattr(builtins, "open", faulty_open)

    def disarm(self):
        if self._state is not None:
            self._state["armed"] = False


@pytest.fixture()
def faults(monkeypatch):
    return FaultInjector(monkeypatch)


def test_scan_fault_preserves_scanned_entries(tmp_path, faults):
    store = filled_store(tmp_path)
    store.index_path.unlink()  # force a full recovery scan
    # Budget: magic + 3 record headers succeed, then EIO.  (Payload
    # reads are seeks, so every read is a header read.)
    faults.arm(store.shard_path, 4)
    faulted = ShardStore(store.shard_path)
    entries, end, complete = faulted._scan_shard(0)
    assert not complete
    assert len(entries) == 3  # everything scanned before the fault
    assert end > len(SHARD_MAGIC)
    for n in range(3):
        assert key_for(n) in entries


def test_faulted_load_serves_partial_but_skips_index_rewrite(
        tmp_path, faults):
    store = filled_store(tmp_path)
    index_bytes = store.index_path.read_bytes()
    store.index_path.unlink()
    faults.arm(store.shard_path, 3)
    faulted = ShardStore(store.shard_path)
    assert faulted.has(key_for(0))  # partial entries still serve
    assert not faulted.has(key_for(5))
    # The load must NOT have persisted the partial scan as the index.
    assert not faulted.index_path.exists()
    # A later, healthy process sees the whole store and heals the index.
    faults.disarm()
    healthy = ShardStore(store.shard_path)
    assert healthy.keys() == {key_for(n) for n in range(6)}
    assert healthy.index_path.read_bytes() == index_bytes


def test_fault_during_tail_scan_keeps_good_index(tmp_path, faults):
    """A stale-but-valid index plus a faulted tail scan: the good rows
    must survive on disk (no rewrite from partial knowledge)."""
    store = filled_store(tmp_path, count=2)
    stale_index = store.index_path.read_bytes()
    # Grow the shard past the index (simulates a writer crash between
    # the payload append and the index append).
    more = ShardStore(store.shard_path)
    assert more.store(key_for(2), b"late" * 80)
    store.index_path.write_bytes(stale_index)
    # Every read faults -> the tail scan learns nothing.
    faults.arm(store.shard_path, 0)
    reader = ShardStore(store.shard_path)
    assert reader.keys() == {key_for(0), key_for(1)}  # index rows serve
    assert reader.index_path.read_bytes() == stale_index  # untouched
    faults.disarm()
    healthy = ShardStore(store.shard_path)
    assert healthy.keys() == {key_for(0), key_for(1), key_for(2)}


def test_garbage_magic_is_still_definitive(tmp_path):
    """A file that is definitively not a shard yields a definitive
    empty result (complete=True) — that's corruption, not a fault."""
    path = tmp_path / "bad.shard"
    path.write_bytes(b"NOTSHARD" + b"x" * 64)
    store = ShardStore(path)
    entries, end, complete = store._scan_shard(0)
    assert (entries, end, complete) == ({}, 0, True)
    assert len(store) == 0


def test_torn_tail_recovery_is_unchanged(tmp_path):
    """The pre-existing contract: a truncated last record is dropped,
    everything before it loads (and this counts as a complete scan)."""
    store = filled_store(tmp_path, count=3)
    raw = store.shard_path.read_bytes()
    store.shard_path.write_bytes(raw[:-7])  # tear the last payload
    store.index_path.unlink()
    recovered = ShardStore(store.shard_path)
    entries, _end, complete = recovered._scan_shard(0)
    assert complete
    assert set(entries) == {key_for(0), key_for(1)}
    assert recovered.keys() == {key_for(0), key_for(1)}
    assert recovered.index_path.exists()  # definitive scans still heal


def test_lock_functions_are_paired(tmp_path):
    """Whatever platform branch imported, _lock/_unlock must exist and
    round-trip on a real file (on POSIX this exercises flock)."""
    from repro.sim import shardstore

    path = tmp_path / "lockfile"
    path.write_bytes(b"\0")
    with open(path, "ab") as fileobj:
        shardstore._lock(fileobj)
        shardstore._unlock(fileobj)
