"""Shard store I/O-fault hardening.

The scenario behind the regression tests: a campaign's cache has a good
shard and a good index; one load hits a transient read error mid-scan
(NFS hiccup, EIO).  The old behaviour treated the partial scan as "the
shard is empty" and **rewrote the index from it** — clobbering a good
accelerator and turning every cached point into a miss.  Pinned here:
a faulted scan keeps the entries it already proved, never persists a
partial index, and the next clean load sees everything again.
"""

import builtins
import hashlib

import pytest

from repro.sim.shardstore import (
    INDEX_MAGIC,
    RECORD_HEADER,
    SHARD_MAGIC,
    ShardStore,
)


def key_for(n: int) -> bytes:
    return hashlib.sha256(f"point-{n}".encode()).digest()


def filled_store(tmp_path, count=6):
    store = ShardStore(tmp_path / "exp.shard")
    for n in range(count):
        assert store.store(key_for(n), f"payload-{n}".encode() * 50)
    return store


class FaultyFile:
    """A real file object whose reads start failing after a budget —
    the shape of a transient EIO mid-scan."""

    def __init__(self, fileobj, reads_before_fault):
        self._file = fileobj
        self._remaining = reads_before_fault

    def read(self, *args):
        if self._remaining <= 0:
            raise OSError(5, "injected read fault")
        self._remaining -= 1
        return self._file.read(*args)

    def __getattr__(self, name):
        return getattr(self._file, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return self._file.__exit__(*exc)


class FaultInjector:
    """Patches ``open`` so binary reads of one path draw from a shared
    read budget, then fail with EIO — until :meth:`disarm`."""

    def __init__(self, monkeypatch):
        self._monkeypatch = monkeypatch
        self._state = None

    def arm(self, path, reads_before_fault):
        real_open = builtins.open
        state = self._state = {"path": str(path),
                               "budget": reads_before_fault,
                               "armed": True}

        class SharedBudgetFile(FaultyFile):
            def read(self, *args):
                if state["armed"]:
                    if state["budget"] <= 0:
                        raise OSError(5, "injected read fault")
                    state["budget"] -= 1
                return self._file.read(*args)

        def faulty_open(file, mode="r", *args, **kwargs):
            fileobj = real_open(file, mode, *args, **kwargs)
            if state["armed"] and str(file) == state["path"] \
                    and "r" in mode and "b" in mode:
                return SharedBudgetFile(fileobj, 0)
            return fileobj

        self._monkeypatch.setattr(builtins, "open", faulty_open)

    def disarm(self):
        if self._state is not None:
            self._state["armed"] = False


@pytest.fixture()
def faults(monkeypatch):
    return FaultInjector(monkeypatch)


def test_scan_fault_preserves_scanned_entries(tmp_path, faults):
    store = filled_store(tmp_path)
    store.index_path.unlink()  # force a full recovery scan
    # Budget: magic + 3 record headers succeed, then EIO.  (Payload
    # reads are seeks, so every read is a header read.)
    faults.arm(store.shard_path, 4)
    faulted = ShardStore(store.shard_path)
    entries, end, complete = faulted._scan_shard(0)
    assert not complete
    assert len(entries) == 3  # everything scanned before the fault
    assert end > len(SHARD_MAGIC)
    for n in range(3):
        assert key_for(n) in entries


def test_faulted_load_serves_partial_but_skips_index_rewrite(
        tmp_path, faults):
    store = filled_store(tmp_path)
    index_bytes = store.index_path.read_bytes()
    store.index_path.unlink()
    faults.arm(store.shard_path, 3)
    faulted = ShardStore(store.shard_path)
    assert faulted.has(key_for(0))  # partial entries still serve
    assert not faulted.has(key_for(5))
    # The load must NOT have persisted the partial scan as the index.
    assert not faulted.index_path.exists()
    # A later, healthy process sees the whole store and heals the index.
    faults.disarm()
    healthy = ShardStore(store.shard_path)
    assert healthy.keys() == {key_for(n) for n in range(6)}
    assert healthy.index_path.read_bytes() == index_bytes


def test_fault_during_tail_scan_keeps_good_index(tmp_path, faults):
    """A stale-but-valid index plus a faulted tail scan: the good rows
    must survive on disk (no rewrite from partial knowledge)."""
    store = filled_store(tmp_path, count=2)
    stale_index = store.index_path.read_bytes()
    # Grow the shard past the index (simulates a writer crash between
    # the payload append and the index append).
    more = ShardStore(store.shard_path)
    assert more.store(key_for(2), b"late" * 80)
    store.index_path.write_bytes(stale_index)
    # Every read faults -> the tail scan learns nothing.
    faults.arm(store.shard_path, 0)
    reader = ShardStore(store.shard_path)
    assert reader.keys() == {key_for(0), key_for(1)}  # index rows serve
    assert reader.index_path.read_bytes() == stale_index  # untouched
    faults.disarm()
    healthy = ShardStore(store.shard_path)
    assert healthy.keys() == {key_for(0), key_for(1), key_for(2)}


def test_garbage_magic_is_still_definitive(tmp_path):
    """A file that is definitively not a shard yields a definitive
    empty result (complete=True) — that's corruption, not a fault."""
    path = tmp_path / "bad.shard"
    path.write_bytes(b"NOTSHARD" + b"x" * 64)
    store = ShardStore(path)
    entries, end, complete = store._scan_shard(0)
    assert (entries, end, complete) == ({}, 0, True)
    assert len(store) == 0


def test_torn_tail_recovery_is_unchanged(tmp_path):
    """The pre-existing contract: a truncated last record is dropped,
    everything before it loads (and this counts as a complete scan)."""
    store = filled_store(tmp_path, count=3)
    raw = store.shard_path.read_bytes()
    store.shard_path.write_bytes(raw[:-7])  # tear the last payload
    store.index_path.unlink()
    recovered = ShardStore(store.shard_path)
    entries, _end, complete = recovered._scan_shard(0)
    assert complete
    assert set(entries) == {key_for(0), key_for(1)}
    assert recovered.keys() == {key_for(0), key_for(1)}
    assert recovered.index_path.exists()  # definitive scans still heal


def test_compact_drops_superseded_frames(tmp_path):
    """Last-write-wins leaves dead frames behind; compact() rewrites
    the shard keeping only the live record per key, byte-identical
    loads before and after."""
    store = ShardStore(tmp_path / "exp.shard")
    assert store.store(key_for(0), b"first-version" * 40)
    assert store.store(key_for(1), b"other" * 40)
    assert store.store(key_for(0), b"second-version" * 40)  # supersedes
    before = {n: store.load(key_for(n)) for n in range(2)}
    dead, total = store.dead_bytes()
    assert dead > 0
    assert store.compact()
    assert store.shard_path.stat().st_size == total - dead
    assert store.dead_bytes()[0] == 0
    assert store.load(key_for(0)) == before[0] == b"second-version" * 40
    assert store.load(key_for(1)) == before[1]
    # A fresh reader (rebuilt index) agrees.
    fresh = ShardStore(store.shard_path)
    assert fresh.keys() == {key_for(0), key_for(1)}
    assert fresh.load(key_for(0)) == before[0]


def test_compact_preserves_compression_flags(tmp_path):
    """Compaction must copy payload bytes *and* their compression flag:
    a zlib frame re-labelled raw (or vice versa) would garble loads."""
    store = ShardStore(tmp_path / "exp.shard")
    compressible = b"A" * 4096  # stored zlib'd
    import os as _os

    incompressible = _os.urandom(4096)  # stored raw
    assert store.store(key_for(0), compressible)
    assert store.store(key_for(1), incompressible)
    assert store.store(key_for(2), b"x")  # make a third frame, then kill it
    assert store.store(key_for(2), b"y" * 100)
    assert store.compact()
    assert store.load(key_for(0)) == compressible
    assert store.load(key_for(1)) == incompressible
    assert store.load(key_for(2)) == b"y" * 100


def test_compact_drops_torn_tail(tmp_path):
    """A torn tail is definitively dead weight: compaction drops it and
    the surviving records still load."""
    store = filled_store(tmp_path, count=3)
    raw = store.shard_path.read_bytes()
    store.shard_path.write_bytes(raw[:-7])
    store.index_path.unlink()
    recovered = ShardStore(store.shard_path)
    assert recovered.compact()
    assert recovered.keys() == {key_for(0), key_for(1)}
    assert ShardStore(store.shard_path).keys() == {key_for(0), key_for(1)}


def test_compact_aborts_cleanly_on_write_fault(tmp_path):
    """An injected write fault while streaming into the .tmp file must
    leave the original shard untouched (atomic replace never ran)."""
    import os as _os

    from repro.sim.faultinject import io_faults

    store = filled_store(tmp_path, count=4)
    assert store.store(key_for(0), b"superseded" * 30)  # create dead weight
    original = store.shard_path.read_bytes()
    tmp_name = store.shard_path.with_name(
        store.shard_path.name + f".tmp{_os.getpid()}")
    with io_faults(tmp_name, writes=1):
        assert not store.compact()
    assert store.shard_path.read_bytes() == original
    assert not tmp_name.exists()
    healthy = ShardStore(store.shard_path)
    assert healthy.load(key_for(0)) == b"superseded" * 30


def test_compact_refuses_partial_scan(tmp_path, faults):
    """A read fault mid-scan means the record set is incomplete;
    compacting from it would drop live records, so it must refuse."""
    store = filled_store(tmp_path, count=5)
    store.index_path.unlink()
    faults.arm(store.shard_path, 3)
    faulted = ShardStore(store.shard_path)
    assert not faulted.compact()
    faults.disarm()
    assert ShardStore(store.shard_path).keys() \
        == {key_for(n) for n in range(5)}


def test_maybe_compact_thresholds_and_age_gate(tmp_path):
    store = ShardStore(tmp_path / "exp.shard")
    assert store.store(key_for(0), b"v1" * 100)
    assert store.store(key_for(0), b"v2" * 100)
    dead, total = store.dead_bytes()
    assert dead > 0
    # Default thresholds (1 MiB of dead weight) are far away: no-op.
    assert not store.maybe_compact()
    # Age gate: a freshly written shard may still have a writer.
    assert not store.maybe_compact(min_dead_bytes=1,
                                   min_dead_fraction=0.0,
                                   min_age_s=3600)
    # Fraction gate alone can refuse too.
    assert not store.maybe_compact(min_dead_bytes=1,
                                   min_dead_fraction=0.99)
    # Past every gate: compacts.
    assert store.maybe_compact(min_dead_bytes=1,
                               min_dead_fraction=0.25)
    assert store.dead_bytes()[0] == 0


def test_refresh_sees_other_writers_appends(tmp_path):
    """The campaign runner's polling primitive: a reader holding a
    cached index re-reads disk after refresh() and sees records another
    store object appended."""
    writer = ShardStore(tmp_path / "exp.shard")
    assert writer.store(key_for(0), b"zero" * 20)
    reader = ShardStore(tmp_path / "exp.shard")
    assert reader.keys() == {key_for(0)}  # index now cached
    assert writer.store(key_for(1), b"one" * 20)
    assert reader.keys() == {key_for(0)}  # stale by design...
    reader.refresh()
    assert reader.keys() == {key_for(0), key_for(1)}  # ...until refreshed


def test_lock_functions_are_paired(tmp_path):
    """Whatever platform branch imported, _lock/_unlock must exist and
    round-trip on a real file (on POSIX this exercises flock)."""
    from repro.sim import shardstore

    path = tmp_path / "lockfile"
    path.write_bytes(b"\0")
    with open(path, "ab") as fileobj:
        shardstore._lock(fileobj)
        shardstore._unlock(fileobj)
