"""Hardware timer compare units and the DCO-calibration clock leak."""

import pytest

from repro.errors import HardwareError
from repro.hw.clock import ClockSystem, DCO_CALIBRATION_HZ
from repro.hw.hwtimer import TimerBlock
from repro.sim.engine import Simulator
from repro.units import ms, seconds


def test_compare_fires_at_absolute_time():
    sim = Simulator()
    block = TimerBlock(sim, "TIMERB", 7)
    fired = []
    unit = block.unit(0)
    unit.set_handler(lambda: fired.append(sim.now))
    unit.arm(ms(5))
    sim.run()
    assert fired == [ms(5)]
    assert unit.fire_count == 1


def test_rearm_replaces_previous():
    sim = Simulator()
    unit = TimerBlock(sim, "TIMERB", 7).unit(0)
    fired = []
    unit.set_handler(lambda: fired.append(sim.now))
    unit.arm(ms(5))
    unit.arm(ms(10))
    sim.run()
    assert fired == [ms(10)]


def test_disarm_cancels():
    sim = Simulator()
    unit = TimerBlock(sim, "TIMERB", 7).unit(0)
    unit.set_handler(lambda: pytest.fail("should not fire"))
    unit.arm(ms(5))
    unit.disarm()
    assert not unit.armed()
    sim.run()


def test_arm_without_handler_rejected():
    sim = Simulator()
    unit = TimerBlock(sim, "TIMERB", 7).unit(0)
    with pytest.raises(HardwareError):
        unit.arm(ms(1))


def test_arm_in_the_past_rejected():
    sim = Simulator()
    unit = TimerBlock(sim, "TIMERB", 7).unit(0)
    unit.set_handler(lambda: None)
    sim.at(ms(10), lambda: None)
    sim.run()
    with pytest.raises(HardwareError):
        unit.arm(ms(5))


def test_unit_index_bounds():
    sim = Simulator()
    block = TimerBlock(sim, "TIMERA", 3)
    with pytest.raises(HardwareError):
        block.unit(3)


def test_dco_calibration_fires_at_16_hz():
    sim = Simulator()
    timer_a = TimerBlock(sim, "TIMERA", 3)
    clock = ClockSystem(sim, timer_a, dco_calibration=True)
    fires = []
    clock.start(lambda: fires.append(sim.now))
    sim.run(until=seconds(2))
    assert clock.calibration_count == 2 * DCO_CALIBRATION_HZ
    assert len(fires) == 32


def test_dco_calibration_disabled_never_fires():
    sim = Simulator()
    timer_a = TimerBlock(sim, "TIMERA", 3)
    clock = ClockSystem(sim, timer_a, dco_calibration=False)
    clock.start(lambda: pytest.fail("leak should be off"))
    sim.run(until=seconds(2))
    assert clock.calibration_count == 0


def test_dco_stop_halts_the_leak():
    sim = Simulator()
    timer_a = TimerBlock(sim, "TIMERA", 3)
    clock = ClockSystem(sim, timer_a, dco_calibration=True)
    clock.start(lambda: None)
    sim.run(until=seconds(1))
    count = clock.calibration_count
    clock.stop()
    sim.run(until=seconds(3))
    assert clock.calibration_count == count
