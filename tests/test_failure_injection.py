"""Failure injection: overflow, loss, collisions, device variation.

A profiler earns trust by behaving sanely when the system around it
misbehaves; these tests push the failure paths the unit tests don't."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.hw.platform import PlatformConfig
from repro.tos.network import Network
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import ms, seconds


def test_log_overflow_mid_run_keeps_prefix_analyzable():
    """A tiny 800-entry buffer (the real default) overflows during a long
    Blink run; the captured prefix must still decode and regress."""
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(
        sim, NodeConfig(node_id=1, logger_buffer_entries=100),
        rng_factory=RngFactory(0))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))
    assert node.logger.stopped_on_overflow
    assert node.logger.records_written == 100
    assert node.logger.records_dropped > 0
    # The prefix still forms a valid, analyzable log.
    timeline = node.timeline(finalize=False)
    intervals = timeline.power_intervals()
    assert intervals
    regression = node.regression(timeline)
    # With only ~9 s captured, LED0 is still identifiable.
    assert regression.current_ma("LED0") == pytest.approx(2.50, rel=0.1)


def test_bounce_survives_link_loss():
    """Packets get dropped; the app simply stops bouncing (no retry in
    Bounce) but nothing crashes and logs stay consistent."""
    from repro.apps.bounce import BounceApp

    network = Network(seed=0)
    node1 = network.add_node(NodeConfig(node_id=1, mac="csma"))
    node4 = network.add_node(NodeConfig(node_id=4, mac="csma"))
    network.channel.set_link_loss(1, 4, 0.5)
    network.channel.set_link_loss(4, 1, 0.5)
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(8))
    for node in (node1, node4):
        entries = node.entries()
        times = [e.time_us for e in entries]
        assert times == sorted(times)
        # Analysis still works on whatever happened.
        node.energy_map()


def test_simultaneous_transmissions_collide_quietly():
    """Two nodes transmitting in each other's calibration blind window:
    frames are lost, radios recover to RX, no exceptions."""
    from repro.apps.bounce import BounceApp

    network = Network(seed=0)
    node1 = network.add_node(NodeConfig(node_id=1, mac="csma"))
    node4 = network.add_node(NodeConfig(node_id=4, mac="csma"))
    # Identical originate delays force the collision.
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(250))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(2))
    assert node1.platform.radio.state == "RX"
    assert node4.platform.radio.state == "RX"
    assert node1.platform.radio.frames_sent == 1
    # Near-simultaneous strobes: delivery is possible for one side at
    # most; both nodes keep functioning either way.
    assert app1.received + app4.received <= 2


def test_device_variation_still_recovered():
    """Each physical node's draws vary +/-10 %; the regression recovers
    *that node's* values, not the nominal profile."""
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(
        sim,
        NodeConfig(node_id=7,
                   platform=PlatformConfig(device_variation=0.10)),
        rng_factory=RngFactory(99))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))
    regression = node.regression()
    for led in ("LED0", "LED1", "LED2"):
        truth_ma = node.platform.profile.current(led, "ON") * 1e3
        assert regression.current_ma(led) == pytest.approx(truth_ma,
                                                           rel=0.03), led
        # And the varied truth is genuinely different from the default.
    default_led0 = 2.50
    varied_led0 = node.platform.profile.current("LED0", "ON") * 1e3
    assert abs(varied_led0 - default_led0) > 0.01


def test_meter_gain_error_preserves_breakdown_shape():
    """+15 % miscalibration (the iCount spec bound): every activity's
    share of the total stays put even though absolute joules shift."""
    from repro.apps.blink import BlinkApp

    def run(gain):
        sim = Simulator()
        node = QuantoNode(
            sim,
            NodeConfig(node_id=1,
                       platform=PlatformConfig(icount_gain_error=gain)),
            rng_factory=RngFactory(0))
        app = BlinkApp()
        node.boot(app.start)
        sim.run(until=seconds(48))
        emap = node.energy_map()
        total = emap.total_energy_j()
        return {k: v / total for k, v in emap.energy_by_activity().items()}

    clean = run(0.0)
    skewed = run(0.15)
    for name in ("1:Red", "1:Green", "1:Blue", "Const."):
        assert skewed[name] == pytest.approx(clean[name], abs=0.01), name


def test_disabled_logger_means_no_visibility_but_no_crash():
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1),
                      rng_factory=RngFactory(0))
    node.logger.enabled = False
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(8))
    assert node.logger.records_written == 0
    assert node.logger.records_dropped > 0
    # The application itself ran fine.
    assert app.toggles[0] >= 7
