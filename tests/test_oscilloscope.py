"""The virtual oscilloscope."""

import pytest

from repro.hw.power import PowerRail
from repro.meter.oscilloscope import Oscilloscope, ScopeTrace
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.units import ma, ms, seconds, us


def _scoped_rail():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("load")
    scope = Oscilloscope(rail)
    return sim, rail, sink, scope


def test_trace_records_steps():
    sim, rail, sink, scope = _scoped_rail()
    sim.at(ms(1), sink.set_current, ma(5))
    sim.at(ms(2), sink.off)
    sim.run()
    assert scope.trace.steps_in(0, ms(3)) == [
        (0, 0.0),
        (ms(1), pytest.approx(ma(5))),
        (ms(2), 0.0),
    ]


def test_mean_current_over_window():
    sim, rail, sink, scope = _scoped_rail()
    sim.at(ms(0), sink.set_current, ma(10))
    sim.at(ms(5), sink.set_current, ma(20))
    sim.at(ms(10), lambda: None)
    sim.run()
    # [0,10): half at 10, half at 20 -> 15 mA
    assert scope.trace.mean_current(0, ms(10)) == pytest.approx(ma(15))


def test_level_at_lookups():
    trace = ScopeTrace(times_ns=[0, 100, 200], amps=[0.0, 1.0, 2.0])
    assert trace.level_at(-1) == 0.0
    assert trace.level_at(0) == 0.0
    assert trace.level_at(150) == 1.0
    assert trace.level_at(500) == 2.0


def test_energy_from_trace():
    sim, rail, sink, scope = _scoped_rail()
    sink.set_current(ma(10))
    sim.at(seconds(1), lambda: None)
    sim.run()
    assert scope.trace.energy(0, seconds(1), 3.0) == pytest.approx(0.030)


def test_empty_window_rejected():
    trace = ScopeTrace(times_ns=[0], amps=[1.0])
    with pytest.raises(ValueError):
        trace.mean_current(100, 100)


def test_sampling_without_ripple_is_flat():
    sim, rail, sink, scope = _scoped_rail()
    sink.set_current(ma(5))
    sim.at(ms(10), lambda: None)
    sim.run()
    times, values = scope.sample(ms(1), ms(2), us(100))
    assert len(times) == 10
    assert all(v == pytest.approx(ma(5)) for v in values)


def test_ripple_is_mean_preserving():
    sim, rail, sink, scope = _scoped_rail()
    sink.set_current(ma(5))
    sim.at(seconds(1), lambda: None)
    sim.run()
    _, values = scope.sample(0, seconds(1), us(50), ripple=True)
    mean = sum(values) / len(values)
    assert mean == pytest.approx(ma(5), rel=0.02)
    assert max(values) > ma(5) * 1.3
    assert min(values) < ma(5) * 0.7


def test_measurement_noise_applied():
    sim, rail, sink, scope = _scoped_rail()
    noisy = Oscilloscope(rail, noise_fraction=0.05,
                         rng=RngFactory(0).stream("scope"))
    sink.set_current(ma(10))
    sim.at(seconds(1), lambda: None)
    sim.run()
    readings = {noisy.measure_mean_current(0, seconds(1)) for _ in range(5)}
    assert len(readings) > 1  # noise varies
    for reading in readings:
        assert reading == pytest.approx(ma(10), rel=0.25)
