"""Node assembly and its analysis surface."""

import pytest

from repro.core.regression import SinkColumn
from repro.tos.node import (
    COMPONENT_NAMES,
    NodeConfig,
    QuantoNode,
    RES_CPU,
    RES_RADIO,
)
from repro.sim.engine import Simulator
from repro.units import ms, seconds


def test_boot_records_initial_snapshot(node, sim):
    node.boot(lambda n: None)
    sim.run(until=ms(10))
    entries = node.entries()
    boots = [e for e in entries if e.type_name == "boot"]
    # One boot record per power-state variable.
    assert len(boots) == len(node.tracker.all_vars())


def test_double_boot_rejected(node, sim):
    node.boot(lambda n: None)
    with pytest.raises(RuntimeError):
        node.boot(lambda n: None)


def test_activity_helper_registers_names(node):
    label = node.activity("MyThing")
    assert node.registry.name_of(label) == "1:MyThing"
    assert node.activity("MyThing") == label


def test_layout_covers_all_sinks(node):
    layout = node.layout()
    res_ids = {column.res_id for column in layout}
    assert RES_CPU in res_ids
    assert RES_RADIO in res_ids
    # The radio contributes one column per non-baseline state.
    radio_columns = [c for c in layout if c.res_id == RES_RADIO]
    assert {c.name for c in radio_columns} == {
        "Radio.VREG", "Radio.IDLE", "Radio.RX", "Radio.TX"}


def test_component_names_cover_layout(node):
    for column in node.layout():
        assert column.res_id in COMPONENT_NAMES


def test_node_without_channel_has_no_radio_stack(node):
    assert node.radio_driver is None
    assert node.am is None
    assert node.mac is None


def test_mark_log_end_closes_measurement(node, sim):
    node.boot(lambda n: None)
    sim.run(until=seconds(1))
    entries_before = len(node.entries())
    node.mark_log_end()
    entries_after = len(node.entries())
    assert entries_after > entries_before
    # The last entry's timestamp is near the mark time.
    last = node.entries()[-1]
    assert last.time_ns >= seconds(1)


def test_mark_log_end_idempotent_per_instant(node, sim):
    node.boot(lambda n: None)
    sim.run(until=seconds(1))
    node.mark_log_end()
    count = len(node.entries())
    node.mark_log_end()  # same sim.now (modulo the 1 ms settle)
    # A second mark at a new time adds records; at the same time it won't.
    assert len(node.entries()) >= count


def test_counters_enabled_by_config():
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True))
    assert node.counters is not None
    node.boot(lambda n: None)
    sim.run(until=ms(10))
    assert node.counters.snapshot() is not None


def test_node_ids_flow_into_labels():
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=42))
    assert node.idle.origin == 42
    assert node.proxies.label("pxy_RX").origin == 42
    assert node.vtimer_label.origin == 42
