"""ASCII rendering: tables, lanes, plots."""

import pytest

from repro.core.report import (
    LaneSegment,
    format_table,
    render_kv,
    render_lanes,
    render_xy,
)
from repro.units import ms


def test_format_table_alignment():
    text = format_table(("name", "value"), [("a", 1), ("long-name", 22)],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "name" in lines[1] and "value" in lines[1]
    # Numbers right-aligned in the same column.
    assert lines[3].rstrip().endswith("1")
    assert lines[4].rstrip().endswith("22")


def test_format_table_custom_alignment():
    text = format_table(("a", "b"), [("x", "y")],
                        align_right=[True, False])
    assert "x" in text


def test_render_lanes_places_segments():
    lanes = {
        "CPU": [LaneSegment(ms(0), ms(50), "Red")],
        "LED": [LaneSegment(ms(50), ms(100), "Blue")],
    }
    text = render_lanes(lanes, 0, ms(100), width=20)
    lines = text.splitlines()
    cpu_line = next(l for l in lines if l.lstrip().startswith("CPU |"))
    led_line = next(l for l in lines if l.lstrip().startswith("LED |"))
    # Red occupies the first half of the CPU lane, Blue the second of LED.
    cells_cpu = cpu_line.split("|")[1]
    cells_led = led_line.split("|")[1]
    assert cells_cpu[:10].count("R") == 10
    assert cells_cpu[10:].count(".") == 10
    assert cells_led[:10].count(".") == 10
    assert "legend" in text


def test_render_lanes_empty_window_rejected():
    with pytest.raises(ValueError):
        render_lanes({}, 100, 100)


def test_render_lanes_clips_to_window():
    lanes = {"X": [LaneSegment(-ms(10), ms(200), "A")]}
    text = render_lanes(lanes, 0, ms(100), width=10)
    row = next(l for l in text.splitlines()
               if l.lstrip().startswith("X |"))
    # The first label gets the first glyph ('R'); the span fills the lane.
    assert row.split("|")[1] == "R" * 10


def test_render_xy_contains_series_marks():
    text = render_xy(
        {"one": ([0, 1, 2], [0, 1, 2]), "two": ([0, 1, 2], [2, 1, 0])},
        width=30, height=10)
    assert "o" in text and "x" in text
    assert "legend: o=one  x=two" in text


def test_render_xy_empty():
    assert "(no data)" in render_xy({}, title="empty")


def test_render_xy_flat_series():
    text = render_xy({"flat": ([0, 1], [5, 5])}, width=20, height=5)
    assert "o" in text


def test_render_kv():
    text = render_kv("title", [("key", "value"), ("k2", 3)])
    assert text.splitlines()[0] == "title"
    assert "key" in text and "value" in text
