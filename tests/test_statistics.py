"""Statistical robustness: key results hold across seeds, not just at
seed 0 (guarding against tuning-to-the-seed)."""

import math

import pytest

from repro.units import seconds, to_mj


@pytest.mark.slow
def test_fp_rate_stable_across_seeds():
    """The channel-17 false-positive rate averages near the paper's
    17.8 % over several seeds, and channel 26 stays at zero."""
    from repro.experiments.fig13 import run_channel

    rates17 = []
    for seed in range(4):
        result = run_channel(17, seed=seed)
        rates17.append(result["fp_rate"])
        clean = run_channel(26, seed=seed)
        assert clean["detections"] == 0, seed
    mean = sum(rates17) / len(rates17)
    assert 0.12 < mean < 0.24
    # Individual seeds stay in a plausible band too.
    assert all(0.08 < r < 0.30 for r in rates17)


@pytest.mark.slow
def test_blink_breakdown_stable_across_seeds():
    """The Blink regression recovers the LED draws at every seed (the
    pipeline has no randomness that should matter here, but the boot
    jitter and variation plumbing must not perturb it)."""
    from repro.experiments.common import run_blink

    for seed in (1, 7, 1234):
        node, app, sim = run_blink(seed)
        regression = node.regression()
        assert regression.current_ma("LED0") == pytest.approx(2.50,
                                                              rel=0.02)
        assert regression.current_ma("LED2") == pytest.approx(0.83,
                                                              rel=0.02)


@pytest.mark.slow
def test_duty_cycle_variance_is_small():
    """The paper quotes 2.22 +/- 0.0027 % on the clean channel: the duty
    cycle is extremely stable.  Ours varies across windows by well under
    a tenth of a point."""
    from repro.experiments.fig13 import run_channel

    result = run_channel(26, seed=2)
    assert result["duty_std"] < 0.1
    assert result["duty_pct"] == pytest.approx(2.2, abs=0.4)
