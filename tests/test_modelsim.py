"""The PowerTOSSIM-style model-based estimator."""

import pytest

from repro.core.modelsim import (
    DEFAULT_MODEL_MAP,
    model_based_estimate,
)
from repro.core.regression import SinkColumn
from repro.core.timeline import PowerInterval
from repro.errors import RegressionError
from repro.units import ma, ms


def _interval(t0_ms, t1_ms, states):
    return PowerInterval(ms(t0_ms), ms(t1_ms), 0,
                         tuple(sorted(states.items())))


LAYOUT = [SinkColumn(1, 1, "LED0"), SinkColumn(4, 3, "Radio.RX")]


def test_prices_states_from_datasheet():
    intervals = [
        _interval(0, 1000, {1: 1, 4: 0}),   # LED0 on for 1 s
        _interval(1000, 2000, {1: 0, 4: 3}),  # radio RX for 1 s
    ]
    estimate = model_based_estimate(intervals, LAYOUT, voltage=3.0)
    # LED0 priced at the 4.3 mA datasheet value (not the actual 2.5).
    assert estimate.energy_of("LED0") == pytest.approx(
        ma(4.3) * 3.0 * 1.0)
    assert estimate.energy_of("Radio.RX") == pytest.approx(
        ma(19.7) * 3.0 * 1.0)
    assert estimate.total_j == pytest.approx(
        (ma(4.3) + ma(19.7)) * 3.0)


def test_baseline_pricing():
    intervals = [_interval(0, 2000, {1: 0, 4: 0})]
    estimate = model_based_estimate(
        intervals, LAYOUT, voltage=3.0, baseline_amps=2.6e-6)
    assert estimate.baseline_energy_j == pytest.approx(2.6e-6 * 3.0 * 2.0)
    assert estimate.total_j == estimate.baseline_energy_j


def test_unmapped_column_ignored():
    layout = LAYOUT + [SinkColumn(9, 1, "Mystery")]
    intervals = [_interval(0, 1000, {1: 0, 4: 0, 9: 1})]
    estimate = model_based_estimate(intervals, layout, voltage=3.0)
    assert estimate.energy_of("Mystery") == 0.0


def test_custom_model_map():
    intervals = [_interval(0, 1000, {1: 1, 4: 0})]
    estimate = model_based_estimate(
        intervals, LAYOUT, voltage=3.0,
        model_map={"LED0": ("LED1", "ON")})  # deliberately wrong mapping
    assert estimate.energy_of("LED0") == pytest.approx(ma(3.7) * 3.0)


def test_time_by_column_tracked():
    intervals = [
        _interval(0, 500, {1: 1, 4: 0}),
        _interval(500, 1000, {1: 1, 4: 0}),
    ]
    estimate = model_based_estimate(intervals, LAYOUT, voltage=3.0)
    assert estimate.time_by_column_ns["LED0"] == ms(1000)


def test_empty_intervals_rejected():
    with pytest.raises(RegressionError):
        model_based_estimate([], LAYOUT, voltage=3.0)


def test_default_map_covers_node_layout(node):
    """Every column the standard node exposes (except deliberately
    unmapped ones) has a datasheet price."""
    unpriced = [c.name for c in node.layout()
                if c.name not in DEFAULT_MODEL_MAP]
    # Sensor and flash-standby-ish columns may be unmapped; the core
    # CPU/LED/radio columns must be covered.
    for name in ("CPU", "LED0", "LED1", "LED2", "Radio.RX", "Radio.TX"):
        assert name in DEFAULT_MODEL_MAP
    assert "Sensor" in " ".join(unpriced) or True
