"""Ground-truth power integration: the PowerRail."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PowerModelError
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import ma, ms, seconds


def test_energy_of_constant_draw():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("led")
    sink.set_current(ma(10))
    sim.at(seconds(2), lambda: None)
    sim.run()
    # 3 V * 10 mA * 2 s = 60 mJ
    assert rail.energy() == pytest.approx(0.060)


def test_energy_piecewise():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("led")
    sim.at(0, sink.set_current, ma(10))
    sim.at(seconds(1), sink.set_current, ma(20))
    sim.at(seconds(2), sink.off)
    sim.at(seconds(3), lambda: None)
    sim.run()
    # 30 mW * 1 s + 60 mW * 1 s + 0
    assert rail.energy() == pytest.approx(0.090)


def test_per_sink_energy_tracked():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    a = rail.register("a")
    b = rail.register("b")
    a.set_current(ma(1))
    b.set_current(ma(2))
    sim.at(seconds(1), lambda: None)
    sim.run()
    assert rail.sink_energy("a") == pytest.approx(0.003)
    assert rail.sink_energy("b") == pytest.approx(0.006)
    assert rail.energy() == pytest.approx(0.009)


def test_duplicate_sink_rejected():
    rail = PowerRail(Simulator())
    rail.register("x")
    with pytest.raises(PowerModelError):
        rail.register("x")


def test_unknown_sink_lookup():
    rail = PowerRail(Simulator())
    with pytest.raises(PowerModelError):
        rail.sink("nope")
    with pytest.raises(PowerModelError):
        rail.sink_energy("nope")


def test_negative_current_rejected():
    rail = PowerRail(Simulator())
    sink = rail.register("x")
    with pytest.raises(PowerModelError):
        sink.set_current(-1.0)


def test_bad_voltage_rejected():
    with pytest.raises(PowerModelError):
        PowerRail(Simulator(), voltage=0.0)


def test_observer_sees_steps():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("x")
    steps = []
    rail.add_observer(lambda t, amps: steps.append((t, amps)))
    sim.at(ms(1), sink.set_current, ma(5))
    sim.at(ms(2), sink.off)
    sim.run()
    assert steps == [(ms(1), pytest.approx(ma(5))), (ms(2), 0.0)]


def test_idempotent_set_does_not_notify():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("x")
    steps = []
    rail.add_observer(lambda t, amps: steps.append(amps))
    sink.set_current(ma(5))
    sink.set_current(ma(5))
    assert len(steps) == 1


def test_current_and_power_queries():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    a = rail.register("a")
    b = rail.register("b")
    a.set_current(ma(1))
    b.set_current(ma(2))
    assert rail.current() == pytest.approx(ma(3))
    assert rail.power() == pytest.approx(0.009)
    assert rail.sink_names() == ["a", "b"]


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=1000),   # dt (ms)
              st.floats(min_value=0.0, max_value=0.1)),   # amps
    min_size=1, max_size=20,
))
def test_energy_matches_manual_integration(schedule):
    """Property: the rail's integral equals the hand-computed sum over an
    arbitrary piecewise-constant schedule."""
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sink = rail.register("x")
    t = 0
    expected = 0.0
    current = 0.0
    for dt_ms, amps in schedule:
        expected += 3.0 * current * dt_ms * 1e-3
        t += ms(dt_ms)
        sim.at(t, sink.set_current, amps)
        current = amps
    sim.run()
    assert rail.energy() == pytest.approx(expected, rel=1e-9, abs=1e-12)
