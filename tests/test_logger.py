"""The Quanto logger: wire format, costs, buffer modes, decoding."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    COST_TOTAL,
    ENTRY_SIZE,
    ENTRY_STRUCT,
    QuantoLogger,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_POWERSTATE,
    decode_log,
)
from repro.errors import LoggerError, LogOverflowError
from repro.hw.catalog import default_actual_profile
from repro.hw.mcu import Mcu
from repro.hw.power import PowerRail
from repro.meter.icount import ICountMeter
from repro.sim.engine import Simulator
from repro.units import ma, us


def _stack(buffer_entries=800, **kwargs):
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    load = rail.register("load")
    load.set_current(ma(10))
    mcu = Mcu(sim, rail, default_actual_profile())
    icount = ICountMeter(rail)
    logger = QuantoLogger(mcu, icount, buffer_entries=buffer_entries,
                          **kwargs)
    return sim, mcu, logger


def test_entry_is_exactly_12_bytes():
    assert ENTRY_SIZE == 12
    assert ENTRY_STRUCT.size == 12


def test_record_charges_102_cycles():
    sim, mcu, logger = _stack()
    mcu.post_task(lambda: logger.record(TYPE_POWERSTATE, 1, 1))
    sim.run()
    assert mcu.total_active_cycles == COST_TOTAL
    assert logger.records_written == 1


def test_record_outside_job_rejected():
    sim, mcu, logger = _stack()
    with pytest.raises(Exception):
        logger.record(TYPE_POWERSTATE, 1, 1)


def test_decode_roundtrip_single():
    sim, mcu, logger = _stack()
    mcu.post_task(lambda: logger.record(TYPE_ACT_CHANGE, 3, 0x0102))
    sim.run()
    entries = logger.decode()
    assert len(entries) == 1
    entry = entries[0]
    assert entry.type == TYPE_ACT_CHANGE
    assert entry.res_id == 3
    assert entry.value == 0x0102
    assert entry.label == ActivityLabel(1, 2)
    assert entry.type_name == "act_change"


def test_timestamps_increase_within_one_job():
    sim, mcu, logger = _stack()

    def body():
        logger.record(TYPE_POWERSTATE, 1, 1)
        logger.record(TYPE_POWERSTATE, 2, 1)
        logger.record(TYPE_POWERSTATE, 3, 1)

    mcu.post_task(body)
    sim.run()
    times = [e.time_us for e in logger.decode()]
    assert times == sorted(times)
    assert len(set(times)) == 3  # strictly increasing (102 us apart)
    assert times[1] - times[0] == COST_TOTAL  # 102 cycles = 102 us


def test_overflow_stops_logging():
    sim, mcu, logger = _stack(buffer_entries=3)

    def body():
        for i in range(5):
            logger.record(TYPE_POWERSTATE, 1, i)

    mcu.post_task(body)
    sim.run()
    assert logger.records_written == 3
    assert logger.records_dropped == 2
    assert logger.stopped_on_overflow


def test_overflow_strict_raises():
    sim, mcu, logger = _stack(buffer_entries=1, strict_overflow=True)

    def body():
        logger.record(TYPE_POWERSTATE, 1, 1)
        logger.record(TYPE_POWERSTATE, 1, 2)

    mcu.post_task(body)
    with pytest.raises(LogOverflowError):
        sim.run()


def test_disabled_logger_drops():
    sim, mcu, logger = _stack()
    logger.enabled = False
    mcu.post_task(lambda: logger.record(TYPE_POWERSTATE, 1, 1))
    sim.run()
    assert logger.records_written == 0
    assert logger.records_dropped == 1
    assert mcu.total_active_cycles == 0  # no cost when not recording


def test_unknown_mode_rejected():
    sim, mcu, _ = _stack()
    with pytest.raises(LoggerError):
        QuantoLogger(mcu, None, mode="telepathy")


def test_decode_rejects_ragged_input():
    with pytest.raises(LoggerError):
        decode_log(b"\x00" * 13)


def test_time_wrap_unwrapping():
    """u32 microsecond timestamps wrap every ~71.6 minutes; the decoder
    must unwrap them into a monotone timeline."""
    raw = b"".join([
        ENTRY_STRUCT.pack(TYPE_POWERSTATE, 1, 0xFFFF_FFF0, 100, 0),
        ENTRY_STRUCT.pack(TYPE_POWERSTATE, 1, 0x0000_0010, 110, 1),
    ])
    entries = decode_log(raw)
    assert entries[1].time_us - entries[0].time_us == 0x20
    assert entries[1].time_us > entries[0].time_us


def test_icount_wrap_unwrapping():
    raw = b"".join([
        ENTRY_STRUCT.pack(TYPE_POWERSTATE, 1, 100, 0xFFFF_FFFE, 0),
        ENTRY_STRUCT.pack(TYPE_POWERSTATE, 1, 200, 0x0000_0002, 1),
    ])
    entries = decode_log(raw)
    assert entries[1].icount - entries[0].icount == 4


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from([TYPE_POWERSTATE, TYPE_ACT_CHANGE, TYPE_ACT_BIND]),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=0xFFFF),
    ),
    min_size=1, max_size=40,
))
def test_decode_roundtrip_property(events):
    """Property: any recorded sequence decodes to the same (type, res_id,
    value) triples, in order, with monotone timestamps."""
    sim, mcu, logger = _stack(buffer_entries=100)

    def body():
        for entry_type, res_id, value in events:
            logger.record(entry_type, res_id, value)

    mcu.post_task(body)
    sim.run()
    entries = logger.decode()
    assert [(e.type, e.res_id, e.value) for e in entries] == events
    times = [e.time_us for e in entries]
    assert times == sorted(times)


def test_boot_snapshot_records_everything():
    from repro.core.activity import SingleActivityDevice
    from repro.core.powerstate import PowerStateTracker

    sim, mcu, logger = _stack()
    tracker = PowerStateTracker()
    tracker.create("CPU", 0, initial_value=1)
    tracker.create("LED0", 1)
    cpu = SingleActivityDevice("CPU", 0)
    mcu.post_task(
        lambda: logger.record_boot_snapshot(tracker, [cpu]))
    sim.run()
    entries = logger.decode()
    assert len(entries) == 3  # two boot powerstates + one activity
    assert entries[0].type_name == "boot"
