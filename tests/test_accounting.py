"""The energy map: merging intervals, regression, and segments."""

import pytest

from repro.core.accounting import (
    CONST_KEY,
    UNTRACKED_KEY,
    EnergyMap,
    build_energy_map,
)
from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.logger import (
    ENTRY_STRUCT,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
    decode_log,
)
from repro.core.regression import SinkColumn, solve_breakdown
from repro.core.timeline import TimelineBuilder
from repro.errors import RegressionError
from repro.units import ms

QUANTUM = 8.33e-6


def _timeline(rows, end_ms, **kwargs):
    raw = b"".join(ENTRY_STRUCT.pack(*row) for row in rows)
    return TimelineBuilder(decode_log(raw), end_time_ns=ms(end_ms), **kwargs)


def _pulses(power_w, dt_ms):
    return int(round(power_w * dt_ms * 1e-3 / QUANTUM))


def test_energy_split_by_activity_segments():
    """One LED on for two activities in sequence: energy splits by time."""
    registry = ActivityRegistry()
    red = registry.label(1, "Red").encode()
    blue = registry.label(1, "Blue").encode()
    led_power = 0.0075
    const = 0.0025
    on_400 = _pulses(led_power + const, 400)
    rows = [
        (TYPE_BOOT, 1, 0, 0, 0),
        # LED on at t=0, red for 100 ms, blue for 300 ms, off at 400;
        # a final record at 500 ms closes the off-state measurement.
        (TYPE_ACT_CHANGE, 1, 0, 0, red),
        (TYPE_POWERSTATE, 1, 0, 0, 1),
        (TYPE_ACT_CHANGE, 1, 100_000, _pulses(led_power + const, 100), blue),
        (TYPE_POWERSTATE, 1, 400_000, on_400, 0),
        (TYPE_BOOT, 1, 500_000, on_400 + _pulses(const, 100), 0),
    ]
    timeline = _timeline(rows, 500)
    layout = [SinkColumn(1, 1, "LED0")]
    regression = solve_breakdown(
        timeline.power_intervals(), layout, QUANTUM, 3.0)
    emap = build_energy_map(
        timeline, regression, registry, {1: "LED0"}, QUANTUM)
    by_activity = emap.energy_by_activity()
    # 100 ms red vs 300 ms blue of LED power.
    assert by_activity["1:Red"] == pytest.approx(led_power * 0.1, rel=0.05)
    assert by_activity["1:Blue"] == pytest.approx(led_power * 0.3, rel=0.05)
    assert by_activity[CONST_KEY] == pytest.approx(const * 0.5, rel=0.1)


def test_reconstruction_conservation():
    """Sum over the map equals regression power replayed over intervals."""
    registry = ActivityRegistry()
    red = registry.label(1, "Red").encode()
    rows = [
        (TYPE_BOOT, 1, 0, 0, 0),
        (TYPE_ACT_CHANGE, 1, 0, 0, red),
        (TYPE_POWERSTATE, 1, 0, 0, 1),
        (TYPE_POWERSTATE, 1, 200_000, _pulses(0.01, 200), 0),
    ]
    timeline = _timeline(rows, 300)
    layout = [SinkColumn(1, 1, "LED0")]
    regression = solve_breakdown(
        timeline.power_intervals(), layout, QUANTUM, 3.0)
    emap = build_energy_map(
        timeline, regression, registry, {1: "LED0"}, QUANTUM)
    replayed = sum(
        regression.power_of_states(iv.states) * iv.dt_ns * 1e-9
        for iv in timeline.power_intervals()
    )
    assert emap.total_energy_j() == pytest.approx(replayed, rel=1e-6)


def test_proxy_folding_changes_attribution():
    registry = ActivityRegistry()
    proxy = ActivityLabel(1, 0xC8)
    remote = registry.label(4, "BounceApp")
    rows = [
        (TYPE_BOOT, 0, 0, 0, 0),
        (TYPE_POWERSTATE, 0, 0, 0, 1),
        (TYPE_ACT_CHANGE, 0, 0, 0, proxy.encode()),
        (TYPE_ACT_BIND, 0, 100_000, _pulses(0.005, 100), remote.encode()),
        (TYPE_POWERSTATE, 0, 200_000, _pulses(0.005, 200), 0),
    ]
    layout = [SinkColumn(0, 1, "CPU")]
    timeline = _timeline(rows, 200)
    regression = solve_breakdown(
        timeline.power_intervals(), layout, QUANTUM, 3.0)

    unfolded = build_energy_map(
        timeline, regression, registry, {0: "CPU"}, QUANTUM,
        fold_proxies=False)
    folded = build_energy_map(
        _timeline(rows, 200), regression, registry, {0: "CPU"}, QUANTUM,
        fold_proxies=True)
    proxy_name = registry.name_of(proxy)
    assert unfolded.energy_by_activity().get(proxy_name, 0.0) > 0.0
    assert folded.energy_by_activity().get(proxy_name, 0.0) == 0.0
    assert folded.energy_by_activity()["4:BounceApp"] > \
        unfolded.energy_by_activity()["4:BounceApp"]


def test_multi_device_equal_split():
    registry = ActivityRegistry()
    red = registry.label(1, "Red").encode()
    blue = registry.label(1, "Blue").encode()
    rows = [
        (TYPE_BOOT, 9, 0, 0, 0),
        (TYPE_POWERSTATE, 9, 0, 0, 1),
        (TYPE_ACT_ADD, 9, 0, 0, red),
        (TYPE_ACT_ADD, 9, 0, 0, blue),
        (TYPE_POWERSTATE, 9, 100_000, _pulses(0.006, 100), 0),
        (TYPE_ACT_REMOVE, 9, 100_000, _pulses(0.006, 100), red),
        (TYPE_ACT_REMOVE, 9, 100_000, _pulses(0.006, 100), blue),
    ]
    timeline = _timeline(rows, 100)
    layout = [SinkColumn(9, 1, "TimerHW")]
    regression = solve_breakdown(
        timeline.power_intervals(), layout, QUANTUM, 3.0)
    emap = build_energy_map(
        timeline, regression, registry, {9: "TimerHW"}, QUANTUM)
    by_activity = emap.energy_by_activity()
    assert by_activity["1:Red"] == pytest.approx(by_activity["1:Blue"],
                                                 rel=1e-6)


def test_untracked_device_goes_to_untracked_bucket():
    registry = ActivityRegistry()
    rows = [
        (TYPE_BOOT, 7, 0, 0, 0),
        (TYPE_POWERSTATE, 7, 0, 0, 1),
        (TYPE_POWERSTATE, 7, 100_000, _pulses(0.004, 100), 0),
    ]
    timeline = _timeline(rows, 100)
    layout = [SinkColumn(7, 1, "ADC")]
    regression = solve_breakdown(
        timeline.power_intervals(), layout, QUANTUM, 3.0)
    emap = build_energy_map(
        timeline, regression, registry, {7: "ADC"}, QUANTUM)
    assert emap.energy_j.get(("ADC", UNTRACKED_KEY), 0.0) > 0.0


def test_empty_timeline_rejected():
    registry = ActivityRegistry()
    timeline = _timeline([], 0)
    layout = [SinkColumn(0, 1, "CPU")]
    with pytest.raises(RegressionError):
        build_energy_map(timeline, None, registry, {}, QUANTUM)


def test_energy_map_views():
    emap = EnergyMap()
    emap.add_energy("LED0", "1:Red", 0.1)
    emap.add_energy("LED0", "1:Blue", 0.2)
    emap.add_energy("CPU", "1:Red", 0.05)
    emap.add_time("CPU", "1:Red", 1000)
    assert emap.energy_by_component() == pytest.approx(
        {"LED0": 0.3, "CPU": 0.05})
    assert emap.energy_by_activity() == pytest.approx(
        {"1:Red": 0.15, "1:Blue": 0.2})
    assert emap.time_by_activity("CPU") == {"1:Red": 1000}
    assert set(emap.components()) == {"LED0", "CPU"}
    assert emap.total_energy_j() == pytest.approx(0.35)
