"""Cross-cutting property tests on the analysis invariants.

These generate random-but-valid workload schedules and check the
pipeline's conservation laws: activity segments tile time exactly, the
energy map redistributes (never creates) energy, and the whole system is
a deterministic function of its seed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.logger import (
    ENTRY_STRUCT,
    TYPE_ACT_CHANGE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
    decode_log,
)
from repro.core.regression import SinkColumn, solve_breakdown
from repro.core.accounting import build_energy_map
from repro.core.timeline import TimelineBuilder

QUANTUM = 8.33e-6

label_values = st.integers(min_value=0x0101, max_value=0x01050)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=1000),  # gap (us)
              st.integers(min_value=0x0101, max_value=0x0110)),
    min_size=1, max_size=30,
))
def test_activity_segments_tile_time(steps):
    """Property: segments of a device partition [first, end] with no gaps
    or overlaps, whatever the change sequence."""
    rows = []
    t = 0
    for gap_us, value in steps:
        t += gap_us
        rows.append(ENTRY_STRUCT.pack(TYPE_ACT_CHANGE, 0, t, 0,
                                      value & 0xFFFF))
    end_ns = (t + 500) * 1000
    entries = decode_log(b"".join(rows))
    builder = TimelineBuilder(entries, end_time_ns=end_ns)
    segments = builder.activity_segments(0)
    if not segments:
        return
    assert segments[0].t0_ns == entries[0].time_ns
    assert segments[-1].t1_ns == end_ns
    for a, b in zip(segments, segments[1:]):
        assert a.t1_ns == b.t0_ns
        assert a.dt_ns > 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=50, max_value=2000),  # dwell (ms)
                  st.integers(min_value=0, max_value=1),      # LED state
                  st.sampled_from([0x0101, 0x0102, 0x0103])), # activity
        min_size=3, max_size=15),
    st.floats(min_value=0.001, max_value=0.02),  # LED power (W)
    st.floats(min_value=0.0005, max_value=0.005),  # const power (W)
)
def test_energy_map_conserves_energy(schedule, led_power, const_power):
    """Property: the map's total equals the regression replayed over the
    intervals — attribution moves joules around but never invents any."""
    registry = ActivityRegistry()
    rows = [ENTRY_STRUCT.pack(TYPE_BOOT, 1, 0, 0, 0)]
    t_us = 0
    pulses = 0.0
    state = 0
    for dwell_ms, new_state, activity in schedule:
        power = const_power + (led_power if state else 0.0)
        pulses += power * dwell_ms * 1e-3 / QUANTUM
        t_us += dwell_ms * 1000
        rows.append(ENTRY_STRUCT.pack(
            TYPE_ACT_CHANGE, 1, t_us, int(pulses), activity))
        if new_state != state:
            rows.append(ENTRY_STRUCT.pack(
                TYPE_POWERSTATE, 1, t_us, int(pulses), new_state))
            state = new_state
    entries = decode_log(b"".join(rows))
    builder = TimelineBuilder(entries, end_time_ns=t_us * 1000)
    intervals = builder.power_intervals()
    if not intervals:
        return
    layout = [SinkColumn(1, 1, "LED0")]
    regression = solve_breakdown(intervals, layout, QUANTUM, 3.0)
    emap = build_energy_map(builder, regression, registry, {1: "LED0"},
                            QUANTUM)
    replayed = sum(
        regression.power_of_states(iv.states) * iv.dt_ns * 1e-9
        for iv in intervals)
    assert emap.total_energy_j() == pytest.approx(replayed, rel=1e-6,
                                                  abs=1e-12)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_network_run_is_deterministic_in_seed(seed):
    """Property: the full two-node Bounce byte log is a function of the
    seed alone."""
    from repro.apps.bounce import BounceApp
    from repro.tos.network import Network
    from repro.tos.node import NodeConfig
    from repro.units import ms, seconds

    def run():
        network = Network(seed=seed)
        network.add_node(NodeConfig(node_id=1, mac="csma"))
        network.add_node(NodeConfig(node_id=4, mac="csma"))
        app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
        app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
        network.boot_all({1: app1.start, 4: app4.start})
        network.run(seconds(2))
        return (network.node(1).logger.raw_bytes(),
                network.node(4).logger.raw_bytes())

    assert run() == run()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                min_size=1, max_size=20))
def test_multi_device_time_split_sums_to_presence(values):
    """Property: a multi-activity device's per-label time, summed, never
    exceeds its total covered time (equal-split can only redistribute)."""
    from repro.core.logger import TYPE_ACT_ADD, TYPE_ACT_REMOVE

    rows = []
    t = 0
    present: set[int] = set()
    for value in values:
        t += 100
        if value in present:
            rows.append(ENTRY_STRUCT.pack(TYPE_ACT_REMOVE, 9, t, 0, value))
            present.discard(value)
        else:
            rows.append(ENTRY_STRUCT.pack(TYPE_ACT_ADD, 9, t, 0, value))
            present.add(value)
    end_ns = (t + 100) * 1000
    entries = decode_log(b"".join(rows))
    builder = TimelineBuilder(entries, end_time_ns=end_ns)
    segments = builder.multi_activity_segments(9)
    covered = sum(s.dt_ns for s in segments)
    split_total = sum(
        s.dt_ns // len(s.labels) * len(s.labels)
        for s in segments if s.labels)
    assert split_total <= covered
