"""Online counters, the network merge, and energy-aware scheduling."""

import pytest

from repro.core.accounting import EnergyMap
from repro.core.counters import CounterAccountant
from repro.core.labels import ActivityLabel
from repro.core.netmerge import (
    NetworkMerger,
    activities_by_origin,
    merge_energy_maps,
    origin_of,
)
from repro.core.sched_ext import (
    EnergyBudgetScheduler,
    EqualEnergyPolicy,
    FixedBudgetPolicy,
)
from repro.errors import ActivityError
from repro.hw.power import PowerRail
from repro.meter.icount import ICountMeter
from repro.sim.engine import Simulator
from repro.units import ma, seconds

RED = ActivityLabel(1, 1)
BLUE = ActivityLabel(1, 2)
PROXY = ActivityLabel(1, 0xC8)


def _counter_stack():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    load = rail.register("load")
    load.set_current(ma(10))  # 30 mW constant
    meter = ICountMeter(rail)
    counters = CounterAccountant(sim, meter)
    return sim, counters


class _FakeDevice:
    pass


def test_counters_charge_current_activity():
    sim, counters = _counter_stack()
    device = _FakeDevice()
    counters.on_single_activity(device, RED, bound=False)
    sim.at(seconds(1), lambda: None)
    sim.run()
    counters.on_single_activity(device, BLUE, bound=False)
    sim.at(seconds(3), lambda: None)
    sim.run()
    snapshot = counters.snapshot()
    # RED held the CPU for 1 s at 30 mW, BLUE for 2 s.
    assert snapshot[RED].energy_j == pytest.approx(0.030, rel=0.01)
    assert snapshot[BLUE].energy_j == pytest.approx(0.060, rel=0.01)
    assert snapshot[RED].time_ns == seconds(1)
    assert snapshot[BLUE].time_ns == seconds(2)


def test_counters_bind_merges_proxy_usage():
    sim, counters = _counter_stack()
    device = _FakeDevice()
    counters.on_single_activity(device, PROXY, bound=False)
    sim.at(seconds(1), lambda: None)
    sim.run()
    counters.on_single_activity(device, RED, bound=True)
    snapshot = counters.snapshot()
    assert snapshot[PROXY].energy_j == 0.0
    assert snapshot[RED].energy_j == pytest.approx(0.030, rel=0.01)


def test_counters_overflow_bucket():
    sim, counters = _counter_stack()
    counters.max_slots = 2
    device = _FakeDevice()
    labels = [ActivityLabel(1, i + 1) for i in range(4)]
    for label in labels:
        counters.on_single_activity(device, label, bound=False)
        sim.at(sim.now + seconds(1), lambda: None)
        sim.run()
    counters.snapshot()
    assert counters.overflow.energy_j > 0.0


def test_counters_memory_and_total():
    sim, counters = _counter_stack()
    assert counters.memory_bytes() == 12 * counters.max_slots
    device = _FakeDevice()
    counters.on_single_activity(device, RED, bound=False)
    sim.at(seconds(2), lambda: None)
    sim.run()
    assert counters.total_energy_j() == pytest.approx(0.060, rel=0.01)


def test_counters_need_two_slots():
    sim, counters = _counter_stack()
    with pytest.raises(ActivityError):
        CounterAccountant(sim, counters.icount, slots=1)


# -- netmerge ---------------------------------------------------------------


def _map_with(entries):
    emap = EnergyMap()
    for component, activity, joules in entries:
        emap.add_energy(component, activity, joules)
    return emap


def test_merge_aggregates_across_nodes():
    maps = {
        1: _map_with([("Radio", "4:BounceApp", 0.002),
                      ("LED1", "4:BounceApp", 0.003),
                      ("Const.", "Const.", 0.010)]),
        4: _map_with([("Radio", "4:BounceApp", 0.004),
                      ("CPU", "1:BounceApp", 0.001)]),
    }
    report = merge_energy_maps(maps)
    assert report.by_activity["4:BounceApp"] == pytest.approx(0.009)
    assert report.by_activity["1:BounceApp"] == pytest.approx(0.001)
    # Const excluded by default.
    assert "Const." not in report.by_activity
    with_const = merge_energy_maps(maps, include_const=True)
    assert with_const.by_activity["Const."] == pytest.approx(0.010)


def test_remote_fraction_butterfly():
    maps = {
        1: _map_with([("Radio", "1:Flood", 0.001)]),
        2: _map_with([("Radio", "1:Flood", 0.002)]),
        3: _map_with([("Radio", "1:Flood", 0.003)]),
    }
    report = merge_energy_maps(maps)
    # 5/6 of the flood's energy was spent away from its origin.
    assert report.remote_fraction("1:Flood", 1) == pytest.approx(5 / 6)
    assert activities_by_origin(report, 1) == ["1:Flood"]


def test_remote_fraction_zero_energy_activity_is_zero():
    """An activity that never consumed anything has no remote share —
    no division-by-zero, just 0.0."""
    report = merge_energy_maps({
        1: _map_with([("Radio", "1:Flood", 0.0)]),
        2: _map_with([("Radio", "1:Flood", 0.0)]),
    })
    assert report.remote_fraction("1:Flood", 1) == 0.0
    # Unknown activities behave the same way.
    assert report.remote_fraction("9:Ghost", 9) == 0.0
    assert report.remote_fractions()["1:Flood"] == 0.0


def test_spread_aggregates_per_node_per_activity():
    maps = {
        1: _map_with([("Radio", "1:Flood", 0.001),
                      ("CPU", "1:Flood", 0.002),
                      ("Radio", "2:App", 0.004)]),
        2: _map_with([("Radio", "1:Flood", 0.003)]),
    }
    report = merge_energy_maps(maps)
    # Components merge within a node; nodes stay separate.
    assert report.spread["1:Flood"] == {
        1: pytest.approx(0.003), 2: pytest.approx(0.003)}
    assert report.spread["2:App"] == {1: pytest.approx(0.004)}
    assert report.total_j == pytest.approx(0.010)
    assert report.node_ids() == [1, 2]
    assert report.remote_fractions() == {
        "1:Flood": pytest.approx(0.5),
        "2:App": pytest.approx(1.0),  # all of 2:App's cost landed on node 1
    }


def test_incremental_merger_equals_batch_merge():
    maps = {
        1: _map_with([("Radio", "1:Flood", 0.001),
                      ("Const.", "Const.", 0.05)]),
        4: _map_with([("Radio", "1:Flood", 0.002),
                      ("CPU", "4:App", 0.003)]),
    }
    merger = NetworkMerger()
    for node_id, emap in maps.items():
        merger.add(node_id, emap)
    incremental = merger.report()
    batch = merge_energy_maps(maps)
    assert incremental.per_node == batch.per_node
    assert incremental.by_activity == batch.by_activity
    assert incremental.spread == batch.spread
    assert incremental.total_j == batch.total_j


def test_origin_of_parses_rendered_activity_names():
    assert origin_of("12:Collect") == 12
    assert origin_of("Const.") is None
    assert origin_of("pxy_RX") is None
    assert origin_of("weird:name") is None


# -- energy-aware scheduling --------------------------------------------------


class _FakeScheduler:
    def __init__(self, cpu_activity_label):
        self.posted = []

        class _Act:
            def __init__(self, label):
                self._label = label

            def get(self):
                return self._label

        self.cpu_activity = _Act(cpu_activity_label)

    def post_function(self, fn, cycles=0, label="task", activity=None):
        self.posted.append((fn, activity))


def test_budget_defers_over_budget_activity():
    sim, counters = _counter_stack()
    device = _FakeDevice()
    scheduler = _FakeScheduler(RED)
    budget = EnergyBudgetScheduler(
        scheduler, counters, FixedBudgetPolicy({RED: 0.010}))
    budget.register_activity(RED)
    # Burn 30 mJ under RED: over its 10 mJ budget.
    counters.on_single_activity(device, RED, bound=False)
    sim.at(seconds(1), lambda: None)
    sim.run()
    assert budget.post(lambda: None, activity=RED) is False
    assert budget.pending_deferred() == 1
    assert scheduler.posted == []
    # New epoch refills; the deferred task is released.
    assert budget.new_epoch() == 1
    assert len(scheduler.posted) == 1


def test_budget_unregistered_activity_unthrottled():
    sim, counters = _counter_stack()
    scheduler = _FakeScheduler(BLUE)
    budget = EnergyBudgetScheduler(
        scheduler, counters, FixedBudgetPolicy({RED: 0.0}))
    assert budget.post(lambda: None, activity=BLUE) is True
    assert len(scheduler.posted) == 1


def test_equal_energy_policy_shares():
    policy = EqualEnergyPolicy(0.010)
    assert policy.allowance(RED, [RED, BLUE]) == pytest.approx(0.005)
    assert policy.allowance(RED, []) == pytest.approx(0.010)
    with pytest.raises(ActivityError):
        EqualEnergyPolicy(0.0)
