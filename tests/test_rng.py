"""Deterministic per-component random streams."""

from repro.sim.rng import RngFactory


def test_same_seed_same_stream():
    a = RngFactory(42).stream("mac")
    b = RngFactory(42).stream("mac")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    factory = RngFactory(42)
    a = factory.stream("mac")
    b = factory.stream("interferer")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    factory = RngFactory(0)
    assert factory.stream("x") is factory.stream("x")


def test_different_seeds_differ():
    a = RngFactory(1).stream("mac")
    b = RngFactory(2).stream("mac")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_derives_independent_space():
    parent = RngFactory(7)
    child1 = parent.fork("node1")
    child2 = parent.fork("node2")
    assert child1.master_seed != child2.master_seed
    s1 = child1.stream("mac")
    s2 = child2.stream("mac")
    assert [s1.random() for _ in range(5)] != [s2.random() for _ in range(5)]


def test_fork_deterministic():
    a = RngFactory(7).fork("node1").stream("mac").random()
    b = RngFactory(7).fork("node1").stream("mac").random()
    assert a == b
