"""The fleet/sweep subsystem: grid expansion, execution, aggregation, CLI."""

import math

import pytest

from repro.cli import main
from repro.errors import SweepError
from repro.sim.sweep import (
    MetricStats,
    PointResult,
    SweepPoint,
    aggregate_comparisons,
    aggregate_metrics,
    expand_grid,
    numeric_leaves,
    run_sweep,
)
from repro.units import seconds

SHORT = str(seconds(8))


# -- grid expansion -------------------------------------------------------


def test_expand_grid_seed_major_deterministic_order():
    points = expand_grid(
        "table3", [0, 1],
        {"duration_ns": [SHORT], "device_variation": ["0.0", "0.01"]},
    )
    assert [p.seed for p in points] == [0, 0, 1, 1]
    # Override combos iterate in sorted key order, values in listed order.
    assert points[0].overrides == (
        ("device_variation", "0.0"), ("duration_ns", SHORT))
    assert points[1].overrides == (
        ("device_variation", "0.01"), ("duration_ns", SHORT))
    assert points == expand_grid(
        "table3", [0, 1],
        {"duration_ns": [SHORT], "device_variation": ["0.0", "0.01"]},
    )


def test_expand_grid_rejects_unknown_parameter():
    with pytest.raises(SweepError) as excinfo:
        expand_grid("table3", [0], {"warp": ["9"]})
    assert "warp" in str(excinfo.value)


def test_expand_grid_rejects_bad_value_before_any_run():
    from repro.errors import ExperimentParameterError

    with pytest.raises(ExperimentParameterError):
        expand_grid("table3", [0], {"duration_ns": ["soon"]})


def test_expand_grid_rejects_empty_seeds_and_values():
    with pytest.raises(SweepError):
        expand_grid("table3", [])
    with pytest.raises(SweepError):
        expand_grid("table3", [0], {"duration_ns": []})


# -- aggregation ----------------------------------------------------------


def _synthetic_point(seed, value, nested):
    return PointResult(
        point=SweepPoint("table3", seed),
        data={"scalar": value, "group": {"cell": nested}, "label": "text"},
        comparisons=[("metric (mJ)", 10.0, value)],
        digest="0" * 64,
        wall_s=0.0,
    )


def test_numeric_leaves_flatten_and_skip_non_numeric():
    leaves = numeric_leaves(
        {"a": 1, "b": {"c": 2.5, "d": "skip"}, "e": True, "f": [1, 2]})
    assert leaves == {"a": 1.0, "b.c": 2.5}


def test_aggregate_metrics_mean_stddev_ci():
    points = [_synthetic_point(s, v, v * 2)
              for s, v in enumerate((4.0, 6.0, 8.0))]
    stats = {m.name: m for m in aggregate_metrics(points)}
    scalar = stats["scalar"]
    assert scalar.n == 3
    assert scalar.mean == pytest.approx(6.0)
    assert scalar.stddev == pytest.approx(2.0)  # sample stddev of 4,6,8
    assert scalar.ci95 == pytest.approx(1.96 * 2.0 / math.sqrt(3))
    assert (scalar.min, scalar.max) == (4.0, 8.0)
    assert stats["group.cell"].mean == pytest.approx(12.0)
    assert "label" not in stats


def test_aggregate_single_point_has_zero_spread():
    stats = aggregate_metrics([_synthetic_point(0, 5.0, 1.0)])
    by_name = {m.name: m for m in stats}
    assert by_name["scalar"].stddev == 0.0
    assert by_name["scalar"].ci95 == 0.0


def test_aggregate_comparisons_keeps_experiment_order():
    points = [_synthetic_point(s, v, 0.0) for s, v in enumerate((9.0, 11.0))]
    comps = aggregate_comparisons(points)
    assert len(comps) == 1
    assert comps[0].name == "metric (mJ)"
    assert comps[0].paper == 10.0
    assert comps[0].mean == pytest.approx(10.0)
    assert comps[0].stddev == pytest.approx(math.sqrt(2.0))


# -- execution ------------------------------------------------------------


def test_serial_sweep_aggregates_energy_per_component_activity():
    result = run_sweep(
        "table3", range(2),
        {"duration_ns": [SHORT], "device_variation": ["0.02"]},
        jobs=1,
    )
    assert len(result.points) == 2
    pair = result.metric("energy_by_pair_mj.LED0/1:Red")
    assert pair.n == 2
    assert pair.mean > 0
    assert pair.stddev > 0  # device variation makes seeds differ
    regression = result.metric("regression_ma.LED0")
    assert regression.mean == pytest.approx(2.51, rel=0.2)


def test_parallel_sweep_collects_in_grid_order():
    result = run_sweep("table3", range(3), {"duration_ns": [SHORT]}, jobs=3)
    assert [p.seed for p in result.points] == [0, 1, 2]
    assert result.jobs == 3


def test_sweep_render_reports_stats_and_digests():
    result = run_sweep("table3", range(2), {"duration_ns": [SHORT]}, jobs=1)
    text = result.render()
    assert "== sweep: table3 over 2 points ==" in text
    assert "aggregate metrics" in text
    assert "stddev" in text
    assert "per-point digests" in text
    assert "seed=0" in text and "seed=1" in text
    assert result.digest() in text


def test_sweep_result_lookup_raises_on_unknown_metric():
    result = run_sweep("table3", [0], {"duration_ns": [SHORT]}, jobs=1)
    with pytest.raises(KeyError):
        result.metric("no_such_metric")


# -- CLI ------------------------------------------------------------------


def test_cli_sweep_smoke(capsys):
    code = main([
        "sweep", "table3", "--seeds", "2", "--jobs", "2",
        "--set", f"duration_ns={SHORT}",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "aggregate metrics" in out
    assert "energy_by_pair_mj.LED0/1:Red" in out


def test_cli_sweep_grid_over_values(capsys):
    code = main([
        "sweep", "table3", "--seeds", "1",
        "--set", f"duration_ns={SHORT},{seconds(4)}",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "over 2 points" in out


def test_cli_sweep_unknown_experiment(capsys):
    assert main(["sweep", "fig99"]) == 2


def test_cli_sweep_unknown_parameter(capsys):
    code = main(["sweep", "table3", "--seeds", "1", "--set", "warp=9"])
    err = capsys.readouterr().err
    assert code == 2
    assert "warp" in err


def test_cli_sweep_malformed_set(capsys):
    assert main(["sweep", "table3", "--seeds", "1", "--set", "nonsense"]) == 2


def test_cli_experiment_accepts_overrides(capsys):
    code = main([
        "experiment", "table3", "--seed", "2",
        "--set", f"duration_ns={SHORT}",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "params: seed=2" in out
    assert f"duration_ns={seconds(8)}" in out


def test_cli_experiment_unknown_override(capsys):
    code = main(["experiment", "table3", "--set", "warp=9"])
    assert code == 2
    assert "warp" in capsys.readouterr().err


# -- parallel executor plumbing -------------------------------------------


def test_in_grid_index_order_restores_any_arrival_order():
    from repro.sim.sweep import _in_grid_index_order

    arrivals = [(3, "d"), (0, "a"), (2, "c"), (1, "b"), (4, "e")]
    assert list(_in_grid_index_order(iter(arrivals), 5)) == \
        ["a", "b", "c", "d", "e"]


def test_in_grid_index_order_detects_missing_results():
    from repro.sim.sweep import _in_grid_index_order

    with pytest.raises(SweepError):
        list(_in_grid_index_order(iter([(0, "a"), (2, "c")]), 3))


def test_seed_worker_fingerprint_prevents_rehash(monkeypatch):
    """The pool initializer installs the parent's fingerprint, so a
    worker-side code_fingerprint() is a cache hit, not a tree hash."""
    import repro.sim.sweep as sweep_mod

    monkeypatch.setattr(sweep_mod, "_code_fingerprint_cache", None)
    sweep_mod._seed_worker_fingerprint("f" * 64)
    assert sweep_mod.code_fingerprint() == "f" * 64


def test_parallel_sweep_chunked_path_matches_serial_on_64_points():
    """The chunked imap_unordered executor must stay byte-identical to
    the serial reference on a grid large enough to exercise chunking
    (chunksize > 1) and out-of-order arrival."""
    overrides = {"duration_ns": [SHORT], "device_variation": ["0.02"]}
    serial = run_sweep("table3", range(8), overrides, jobs=1)
    parallel = run_sweep("table3", range(8), overrides, jobs=2)
    assert serial.digest() == parallel.digest()
    assert serial.metrics == parallel.metrics
