"""The MCU model: jobs, cycle charging, IRQ priority, sleep/wake."""

import pytest

from repro.errors import HardwareError
from repro.hw.catalog import default_actual_profile
from repro.hw.mcu import Mcu
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import ma, us


def _mcu():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    mcu = Mcu(sim, rail, default_actual_profile())
    return sim, rail, mcu


def test_job_occupies_declared_cycles():
    sim, rail, mcu = _mcu()
    done_at = []
    mcu.post_task(lambda: mcu.consume(100), label="work")
    mcu.post_task(lambda: done_at.append(sim.now), label="after")
    sim.run()
    # Second job starts when the first one's 100 cycles (100 us) elapse.
    assert done_at == [us(100)]


def test_consume_outside_job_rejected():
    sim, rail, mcu = _mcu()
    with pytest.raises(HardwareError):
        mcu.consume(10)


def test_negative_cycles_rejected():
    sim, rail, mcu = _mcu()

    def bad():
        mcu.consume(-5)

    mcu.post_task(bad)
    with pytest.raises(HardwareError):
        sim.run()


def test_irq_jobs_preempt_queued_tasks():
    sim, rail, mcu = _mcu()
    order = []

    def first():
        mcu.consume(10)
        order.append("task1")
        mcu.post_task(lambda: order.append("task2"))
        mcu.post_irq(lambda: order.append("irq"))

    mcu.post_task(first)
    sim.run()
    assert order == ["task1", "irq", "task2"]


def test_cpu_sleeps_when_queue_empties():
    sim, rail, mcu = _mcu()
    states = []
    mcu.add_power_listener(states.append)
    mcu.post_task(lambda: mcu.consume(10))
    sim.run()
    assert states == ["ACTIVE", "LPM3"]
    assert not mcu.active
    assert mcu.idle()


def test_ground_truth_current_follows_activity():
    sim, rail, mcu = _mcu()
    profile = default_actual_profile()
    active = profile.current("CPU", "ACTIVE")
    mcu.post_task(lambda: mcu.consume(1000))
    # Before run: job queued, CPU woke immediately.
    assert rail.current() == pytest.approx(active)
    sim.run()
    assert rail.current() == pytest.approx(profile.current("CPU", "LPM3"))


def test_virtual_now_advances_with_consumption():
    sim, rail, mcu = _mcu()
    samples = []

    def work():
        samples.append(mcu.virtual_now())
        mcu.consume(50)
        samples.append(mcu.virtual_now())
        mcu.consume(25)
        samples.append(mcu.virtual_now())

    mcu.post_task(work)
    sim.run()
    assert samples == [0, us(50), us(75)]


def test_virtual_now_outside_job_is_sim_now():
    sim, rail, mcu = _mcu()
    sim.at(us(500), lambda: None)
    sim.run()
    assert mcu.virtual_now() == sim.now


def test_total_active_cycles_accumulates():
    sim, rail, mcu = _mcu()
    mcu.post_task(lambda: mcu.consume(100))
    mcu.post_task(lambda: mcu.consume(200))
    sim.run()
    assert mcu.total_active_cycles == 300
    assert mcu.total_active_time_ns == us(300)
    assert mcu.jobs_executed == 2


def test_wake_from_interrupt_while_sleeping():
    sim, rail, mcu = _mcu()
    states = []
    mcu.add_power_listener(states.append)
    mcu.post_task(lambda: mcu.consume(10))
    sim.run()
    assert states[-1] == "LPM3"
    sim.at(sim.now + us(100), mcu.post_irq, lambda: mcu.consume(5))
    sim.run()
    assert states[-2:] == ["ACTIVE", "LPM3"]


def test_jobs_pending_counts_queued():
    sim, rail, mcu = _mcu()
    observed = []

    def work():
        mcu.post_task(lambda: None)
        mcu.post_task(lambda: None)
        observed.append(mcu.jobs_pending())

    mcu.post_task(work)
    sim.run()
    assert observed == [2]


def test_invalid_sleep_state_rejected():
    sim = Simulator()
    rail = PowerRail(sim)
    with pytest.raises(HardwareError):
        Mcu(sim, rail, default_actual_profile(), sleep_state="NAP")
