"""The instrumented forwarding queue and the collection protocol."""

import pytest

from repro.core.labels import ActivityLabel
from repro.errors import SimulationError
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.tos.queue import ForwardingQueue
from repro.units import ms, seconds


def test_queue_restores_saved_activity(node, sim):
    red = node.activity("Red")
    blue = node.activity("Blue")
    queue = ForwardingQueue("q", node.cpu_activity, node.platform.mcu)
    seen = []

    def app(n):
        n.cpu_activity.set(red)
        queue.enqueue("from-red")
        n.cpu_activity.set(blue)
        queue.enqueue("from-blue")
        n.cpu_activity.set(n.idle)
        # Later service: each dequeue restores its item's activity.
        seen.append((queue.dequeue(), n.cpu_activity.get()))
        seen.append((queue.dequeue(), n.cpu_activity.get()))

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=ms(10))
    assert seen == [("from-red", red), ("from-blue", blue)]


def test_queue_drop_tail_when_full(node, sim):
    queue = ForwardingQueue("q", node.cpu_activity, node.platform.mcu,
                            capacity=2)
    results = []

    def app(n):
        results.append(queue.enqueue(1))
        results.append(queue.enqueue(2))
        results.append(queue.enqueue(3))  # dropped

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=ms(10))
    assert results == [True, True, False]
    assert queue.dropped == 1
    assert len(queue) == 2


def test_queue_peek_and_empty(node, sim):
    queue = ForwardingQueue("q", node.cpu_activity, node.platform.mcu)
    assert queue.dequeue() is None
    assert queue.peek_activity() is None
    red = node.activity("Red")

    def app(n):
        n.cpu_activity.set(red)
        queue.enqueue("x")

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    sim.run(until=ms(10))
    assert queue.peek_activity() == red


def test_queue_capacity_validation(node):
    with pytest.raises(SimulationError):
        ForwardingQueue("q", node.cpu_activity, node.platform.mcu,
                        capacity=0)


# -- the collection protocol ---------------------------------------------


@pytest.fixture(scope="module")
def collection_run():
    from repro.apps.collection import CollectionApp, build_line_topology

    network = Network(seed=5)
    node_ids = [10, 11, 12]  # 12 -> 11 -> 10 (root)
    for node_id in node_ids:
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
    apps = build_line_topology(network, node_ids, root_id=10,
                               sample_period_ns=seconds(4))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(seconds(16))
    return network, apps


def test_collection_delivers_to_root(collection_run):
    network, apps = collection_run
    root = apps[10]
    assert len(root.delivered) >= 3
    origins = {origin for origin, _ in root.delivered}
    # The leaf's samples traversed the middle node to reach the root.
    assert 12 in origins


def test_collection_middle_node_forwards(collection_run):
    network, apps = collection_run
    middle = apps[11]
    # It forwarded more packets than it originated (its own + the leaf's).
    assert middle.packets_forwarded > middle.samples_originated


def test_collection_charges_origin_across_hops(collection_run):
    """The leaf's Collect activity consumed energy on the middle node."""
    network, apps = collection_run
    middle_node = network.node(11)
    emap = middle_node.energy_map(fold_proxies=True)
    by_activity = emap.energy_by_activity()
    assert by_activity.get("12:Collect", 0.0) > 0.0


def test_collection_network_price_per_origin(collection_run):
    from repro.core.netmerge import merge_energy_maps

    network, apps = collection_run
    maps = {nid: network.node(nid).energy_map(fold_proxies=True)
            for nid in (10, 11, 12)}
    report = merge_energy_maps(maps)
    # The leaf's activity cost is spread over at least two nodes.
    leaf_spread = report.spread.get("12:Collect", {})
    assert len([n for n, e in leaf_spread.items() if e > 0]) >= 2
    assert report.remote_fraction("12:Collect", 12) > 0.1
