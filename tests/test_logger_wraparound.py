"""Randomized wrap-around tests for the log decoder.

The wire format stores 32-bit ``time`` (us) and ``ic`` (pulses) fields
that wrap; the offline decoder must unwrap them into monotone absolute
values.  These tests drive :func:`repro.core.logger.decode_log` with
synthetic packed entries whose true values are known, including multiple
wraps and wraps landing exactly on the 2^32 boundary.
"""

import random

import pytest

from repro.core.logger import (
    ENTRY_STRUCT,
    TYPE_POWERSTATE,
    decode_log,
)

U32 = 1 << 32


def pack_entries(true_values):
    """Pack (time_us, icount) truth pairs, wrapping both fields to u32."""
    raw = bytearray()
    for time_us, icount in true_values:
        raw += ENTRY_STRUCT.pack(
            TYPE_POWERSTATE, 0, time_us % U32, icount % U32, 0
        )
    return bytes(raw)


def assert_unwraps_to(true_values):
    entries = decode_log(pack_entries(true_values))
    assert [(e.time_us, e.icount) for e in entries] == list(true_values)
    # Monotone: unwrapped fields never step backwards.
    for previous, current in zip(entries, entries[1:]):
        assert current.time_us >= previous.time_us
        assert current.icount >= previous.icount


def test_single_wrap():
    assert_unwraps_to([
        (U32 - 1000, 10),
        (U32 - 1, 20),
        (U32 + 500, 30),  # wrapped: raw field reads 500
    ])


def test_wrap_exactly_at_boundary():
    # The raw field hits 0xFFFFFFFF, then lands exactly on 0 — the
    # decoder must read that as 2^32, not as time standing still.
    assert_unwraps_to([
        (U32 - 1, 1),
        (U32, 2),
        (U32 + 1, 3),
    ])


def test_multiple_wraps():
    values = [(i * (U32 // 2 + 7), i * (U32 // 3 + 11))
              for i in range(12)]  # wraps time ~6 times, icount ~4 times
    assert_unwraps_to(values)


def test_icount_wraps_independently_of_time():
    # Time stays inside one epoch while icount wraps twice.  (Each
    # per-record icount increment stays below 2^32 — a jump of a full
    # epoch is inherently invisible to any unwrapping decoder.)
    assert_unwraps_to([
        (100, U32 - 5),
        (200, U32 + 5),
        (300, 2 * U32 + 3),
    ])


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_randomized_wraps_unwrap_exactly(seed):
    rng = random.Random(seed)
    # Start below 2^31 so the first record (which anchors epoch zero in
    # the decoder) is itself still inside the first epoch.
    time_us = rng.randrange(1 << 31)
    icount = rng.randrange(1 << 31)
    values = []
    for _ in range(300):
        # Increments below 2^31 keep each wrap observable (a jump of a
        # full epoch between records would be indistinguishable from no
        # wrap at all — the same ambiguity a real unwrapping tool has).
        time_us += rng.randrange(1, 1 << 31)
        icount += rng.randrange(0, 1 << 31)
        values.append((time_us, icount))
    assert_unwraps_to(values)


def test_randomized_equal_timestamps_within_epoch():
    # Same-timestamp entries (several records inside one CPU job) must
    # not be mistaken for wraps.
    rng = random.Random(99)
    time_us = U32 - 50
    values = []
    for _ in range(100):
        if rng.random() < 0.4:
            time_us += rng.randrange(1, 1000)
        values.append((time_us, time_us))
    assert_unwraps_to(values)
