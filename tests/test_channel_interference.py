"""The radio channel and the 802.11 interference process."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import RadioChannel, channel_center_mhz, overlap_factor
from repro.net.interference import Wifi80211Interferer, WifiTrafficConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.units import seconds


def test_channel_centers():
    assert channel_center_mhz(11) == 2405.0
    assert channel_center_mhz(26) == 2480.0
    assert channel_center_mhz(17) == 2453.0  # the paper's stated center
    with pytest.raises(NetworkError):
        channel_center_mhz(10)


def test_overlap_factor_geometry():
    # 802.11 ch 6 at 2437 MHz, 22 MHz wide.
    assert overlap_factor(2437.0, 22.0, 17) > 0.4  # 16 MHz away: in skirt
    assert overlap_factor(2437.0, 22.0, 26) == 0.0  # 43 MHz away: clean
    # Directly on top: full overlap (ch 13 center 2415... pick within).
    assert overlap_factor(2480.0, 22.0, 26) == 1.0


def test_interferer_duty_fraction():
    """The busy fraction of the tuned process lands in the regime that
    produces the paper's false-positive rate (~4-8 % busy)."""
    sim = Simulator()
    interferer = Wifi80211Interferer(
        sim, WifiTrafficConfig(), RngFactory(0).stream("wifi"))
    interferer.start()
    busy_ns = 0
    step = 100_000  # 0.1 ms
    t = 0
    while t < seconds(30):
        t += step
        sim.run(until=t)
        if interferer.active():
            busy_ns += step
    fraction = busy_ns / seconds(30)
    assert 0.03 < fraction < 0.10
    assert interferer.burst_count > 100


def test_interferer_overlap_by_channel():
    sim = Simulator()
    interferer = Wifi80211Interferer(
        sim, WifiTrafficConfig(), RngFactory(0).stream("wifi"))
    assert interferer.overlap(17) > 0.1
    assert interferer.overlap(26) == 0.0


def test_interferer_stop():
    sim = Simulator()
    interferer = Wifi80211Interferer(
        sim, WifiTrafficConfig(), RngFactory(0).stream("wifi"))
    interferer.start()
    sim.run(until=seconds(1))
    interferer.stop()
    assert not interferer.active()


def test_channel_duplicate_node_rejected():
    sim = Simulator()
    channel = RadioChannel(sim)

    class FakeRadio:
        node_id = 1
        freq_channel = 26

    channel.register(FakeRadio())
    with pytest.raises(NetworkError):
        channel.register(FakeRadio())


def test_link_loss_validation():
    channel = RadioChannel(Simulator())
    with pytest.raises(NetworkError):
        channel.set_link_loss(1, 2, 1.5)


def test_energy_detected_from_interferer_only_on_overlapping_channel():
    sim = Simulator()
    channel = RadioChannel(sim)

    class FakeInterferer:
        def active(self):
            return True

        def overlap(self, ch):
            return 1.0 if ch == 17 else 0.0

    class FakeRadio:
        def __init__(self, node_id, freq):
            self.node_id = node_id
            self.freq_channel = freq

    channel.add_interferer(FakeInterferer())
    r17 = FakeRadio(1, 17)
    r26 = FakeRadio(2, 26)
    channel.register(r17)
    channel.register(r26)
    assert channel.energy_detected(r17) is True
    assert channel.energy_detected(r26) is False
