"""Shard partitioning and the shard/merge determinism contract.

The multi-machine campaign story: N machines each run
``sweep <id> --shard i/N --cache-dir <own dir>`` against one spec, then
``merge-sweeps`` folds the stores.  Gated here:

* the partition is exact — every grid point lands in exactly one shard,
  shards never overlap, their union is the grid;
* the merged result is **byte-identical** to the unsharded run — same
  aggregates, same per-point digests, same sweep digest;
* merging the same stores in any directory order gives the same bytes;
* strict mode refuses a merge with missing coverage instead of quietly
  simulating the gap.
"""

import pytest

from repro.cli import main
from repro.errors import SweepError
from repro.sim.sweep import (
    expand_grid,
    merge_sweeps,
    parse_shard,
    run_sweep,
    shard_points,
)
from repro.units import seconds

SHORT = str(seconds(8))
OVERRIDES = {"duration_ns": [SHORT], "device_variation": ["0.02"]}


# -- partition -------------------------------------------------------------


def test_every_point_lands_in_exactly_one_shard():
    grid = expand_grid("table3", range(7), OVERRIDES)
    for count in (1, 2, 3, 7, 5):
        shards = [shard_points(grid, i, count) for i in range(count)]
        seen = [point for shard in shards for point in shard]
        assert sorted(seen, key=grid.index) == grid  # union, no dupes
        assert sum(len(s) for s in shards) == len(grid)


def test_shard_partition_is_deterministic_round_robin():
    grid = expand_grid("table3", range(6), OVERRIDES)
    assert shard_points(grid, 0, 3) == grid[0::3]
    assert shard_points(grid, 2, 3) == grid[2::3]
    # A shard of one is the whole grid.
    assert shard_points(grid, 0, 1) == grid


def test_parse_shard_specs():
    assert parse_shard("0/4") == (0, 4)
    assert parse_shard("3/4") == (3, 4)
    for bad in ("4/4", "-1/4", "1", "a/b", "1/0", "/"):
        with pytest.raises(SweepError):
            parse_shard(bad)


def test_bad_shard_rejected_by_runner():
    with pytest.raises(SweepError):
        run_sweep("table3", [0], OVERRIDES, shard=(2, 2))


# -- merge ------------------------------------------------------------------


def test_sharded_then_merged_is_byte_identical_to_unsharded(tmp_path):
    """The acceptance criterion: shard the grid over two stores, merge,
    and compare everything against the single-machine run."""
    unsharded = run_sweep("table3", range(4), OVERRIDES, jobs=1)
    dirs = [tmp_path / "m0", tmp_path / "m1"]
    for index, directory in enumerate(dirs):
        shard = run_sweep("table3", range(4), OVERRIDES, jobs=1,
                          cache_dir=directory, shard=(index, 2))
        assert len(shard.points) == 2
        assert shard.shard == (index, 2)
        assert shard.grid_points == 4
    merged = merge_sweeps("table3", range(4), OVERRIDES, cache_dirs=dirs,
                          strict=True)
    assert merged.digest() == unsharded.digest()
    assert merged.metrics == unsharded.metrics
    assert merged.comparisons == unsharded.comparisons
    assert [p.digest for p in merged.points] == \
        [p.digest for p in unsharded.points]
    assert merged.cache_hits == 4 and merged.simulated == 0


def test_merge_is_order_independent(tmp_path):
    dirs = [tmp_path / "m0", tmp_path / "m1", tmp_path / "m2"]
    for index, directory in enumerate(dirs):
        run_sweep("table3", range(3), OVERRIDES, jobs=1,
                  cache_dir=directory, shard=(index, 3))
    forward = merge_sweeps("table3", range(3), OVERRIDES,
                           cache_dirs=dirs, strict=True)
    backward = merge_sweeps("table3", range(3), OVERRIDES,
                            cache_dirs=list(reversed(dirs)), strict=True)
    assert forward.digest() == backward.digest()
    assert forward.metrics == backward.metrics
    assert forward.render().splitlines()[0] == \
        backward.render().splitlines()[0]


def test_strict_merge_refuses_missing_coverage(tmp_path):
    run_sweep("table3", range(4), OVERRIDES, jobs=1,
              cache_dir=tmp_path / "m0", shard=(0, 2))
    # Shard 1/2 never ran: strict merge must name the gap.
    with pytest.raises(SweepError) as excinfo:
        merge_sweeps("table3", range(4), OVERRIDES,
                     cache_dirs=[tmp_path / "m0"], strict=True)
    assert "missing" in str(excinfo.value)


def test_lenient_merge_simulates_the_gap_and_backfills(tmp_path):
    run_sweep("table3", range(2), OVERRIDES, jobs=1,
              cache_dir=tmp_path / "m0", shard=(0, 2))
    merged = merge_sweeps("table3", range(2), OVERRIDES,
                          cache_dirs=[tmp_path / "m0"])
    assert (merged.cache_hits, merged.simulated) == (1, 1)
    assert merged.digest() == run_sweep("table3", range(2), OVERRIDES).digest()
    # The simulated point was written back: a re-merge is all hits.
    again = merge_sweeps("table3", range(2), OVERRIDES,
                         cache_dirs=[tmp_path / "m0"], strict=True)
    assert (again.cache_hits, again.simulated) == (2, 0)


def test_merge_needs_at_least_one_dir():
    with pytest.raises(SweepError):
        merge_sweeps("table3", [0], OVERRIDES, cache_dirs=[])


def test_shard_header_renders_slice(tmp_path):
    result = run_sweep("table3", range(4), OVERRIDES, jobs=1, shard=(1, 2))
    assert "-- shard: 1/2 (2 of 4 grid points)" in result.render()


# -- CLI --------------------------------------------------------------------


def test_cli_shard_and_merge_roundtrip(tmp_path, capsys):
    spec = ["table3", "--seeds", "2", "--set", f"duration_ns={SHORT}"]
    assert main(["sweep", *spec]) == 0
    want = capsys.readouterr().out
    for index in range(2):
        directory = tmp_path / f"m{index}"
        assert main(["sweep", *spec, "--shard", f"{index}/2",
                     "--cache-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert f"-- shard: {index}/2 (1 of 2 grid points)" in out
    assert main(["merge-sweeps", *spec, "--strict",
                 "--cache-dir", str(tmp_path / "m0"),
                 "--cache-dir", str(tmp_path / "m1")]) == 0
    merged = capsys.readouterr().out

    def digest_line(text):
        return next(line for line in text.splitlines()
                    if "sweep digest" in line)

    assert digest_line(merged) == digest_line(want)


def test_cli_bad_shard_spec_fails_cleanly(capsys):
    assert main(["sweep", "table3", "--seeds", "1", "--shard", "9"]) == 2
    assert "shard" in capsys.readouterr().err
