"""Activity labels: encoding, registry, proxies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.labels import (
    IDLE_ID,
    PROXY_BASE,
    PROXY_IDS,
    QUANTO_ID,
    ActivityLabel,
    ActivityRegistry,
    idle_label,
)
from repro.core.activity import ProxyActivitySet
from repro.errors import ActivityError


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_encode_decode_roundtrip(origin, aid):
    label = ActivityLabel(origin, aid)
    assert ActivityLabel.decode(label.encode()) == label
    assert 0 <= label.encode() <= 0xFFFF


def test_encoding_layout():
    assert ActivityLabel(1, 2).encode() == 0x0102
    assert ActivityLabel.decode(0x0401) == ActivityLabel(4, 1)


def test_out_of_range_rejected():
    with pytest.raises(ActivityError):
        ActivityLabel(256, 0)
    with pytest.raises(ActivityError):
        ActivityLabel(0, 300)
    with pytest.raises(ActivityError):
        ActivityLabel.decode(1 << 16)


def test_idle_and_proxy_predicates():
    assert idle_label(3).is_idle
    assert not idle_label(3).is_proxy
    proxy = ActivityLabel(1, PROXY_IDS["pxy_RX"])
    assert proxy.is_proxy
    assert not proxy.is_idle
    quanto = ActivityLabel(1, QUANTO_ID)
    assert not quanto.is_proxy  # Quanto's own activity is not a proxy


def test_str_rendering():
    assert str(ActivityLabel(4, 7)) == "4:7"


def test_registry_registers_and_renders():
    registry = ActivityRegistry()
    aid = registry.register("Red")
    label = ActivityLabel(1, aid)
    assert registry.name_of(label) == "1:Red"
    # Re-registration returns the same id.
    assert registry.register("Red") == aid


def test_registry_well_known_names():
    registry = ActivityRegistry()
    assert registry.name_of(idle_label(1)) == "1:Idle"
    assert registry.name_of(
        ActivityLabel(1, PROXY_IDS["int_TIMERB0"])) == "1:int_TIMERB0"
    assert registry.name_of(ActivityLabel(1, QUANTO_ID)) == "1:Quanto"


def test_registry_label_helper():
    registry = ActivityRegistry()
    label = registry.label(4, "BounceApp")
    assert registry.name_of(label) == "4:BounceApp"
    # Same name from a different origin: same id, different origin.
    other = registry.label(1, "BounceApp")
    assert other.aid == label.aid
    assert other.origin == 1


def test_registry_id_collision_rejected():
    registry = ActivityRegistry()
    registry.register("A", aid=5)
    with pytest.raises(ActivityError):
        registry.register("B", aid=5)


def test_registry_reserved_range_protected():
    registry = ActivityRegistry()
    with pytest.raises(ActivityError):
        registry.register("Bad", aid=PROXY_BASE)
    with pytest.raises(ActivityError):
        registry.register("Bad", aid=IDLE_ID)


def test_registry_auto_ids_unique():
    registry = ActivityRegistry()
    ids = [registry.register(f"act{i}") for i in range(30)]
    assert len(set(ids)) == 30
    assert all(0 < i < PROXY_BASE for i in ids)


def test_proxy_set_per_node():
    proxies = ProxyActivitySet(7, PROXY_IDS)
    label = proxies.label("pxy_RX")
    assert label.origin == 7
    assert label.aid == PROXY_IDS["pxy_RX"]
    assert set(proxies.names()) == set(PROXY_IDS)
    with pytest.raises(ActivityError):
        proxies.label("int_BOGUS")
    with pytest.raises(ActivityError):
        ProxyActivitySet(300, PROXY_IDS)
