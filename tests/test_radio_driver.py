"""The radio driver's instrumented paths, in isolation."""

import pytest

from repro.hw.radio import Frame
from repro.tos.drivers.radio import SendError
from repro.tos.network import Network
from repro.tos.node import NodeConfig, RES_CPU, RES_RADIO
from repro.units import ms, seconds


def _single_node(spi_mode="irq", seed=0):
    from repro.hw.platform import PlatformConfig

    network = Network(seed=seed)
    node = network.add_node(NodeConfig(
        node_id=1, mac="csma",
        platform=PlatformConfig(spi_mode=spi_mode)))
    return network, node


def _send_one(network, node, payload=b"x" * 10, use_cca=True):
    done = []

    def app(n):
        def ready():
            n.set_cpu_activity("Tx")
            frame = Frame(src=1, dst=2, am_type=5, payload=payload)
            n.radio_driver.send(frame, lambda f: done.append(
                network.sim.now), use_cca=use_cca)

        n.mac.start(ready)

    node.boot(app)
    network.run(seconds(1))
    return done


def test_send_completes_and_paints_radio_irq_mode():
    network, node = _single_node("irq")
    done = _send_one(network, node)
    assert len(done) == 1
    # The radio was painted with the sender's activity during the TX and
    # returned to idle afterwards.
    tx_label = node.registry.label(1, "Tx")
    timeline = node.timeline()
    radio_segments = timeline.activity_segments(RES_RADIO)
    assert any(s.label == tx_label for s in radio_segments)
    assert node.radio_activity.get() == node.idle
    # Interrupt mode used per-pair UART interrupts.
    assert node.platform.spi.pair_interrupts > 5
    assert node.platform.spi.dma_transfers == 0


def test_send_completes_dma_mode():
    network, node = _single_node("dma")
    done = _send_one(network, node)
    assert len(done) == 1
    assert node.platform.spi.dma_transfers == 1
    assert node.platform.spi.pair_interrupts == 0
    assert node.interrupts.count("int_DACDMA") == 1


def test_uart_fragments_bound_to_sender_activity():
    network, node = _single_node("irq")
    _send_one(network, node)
    tx_label = node.registry.label(1, "Tx")
    uart = node.proxies.label("int_UART0RX")
    timeline = node.timeline()
    segments = timeline.activity_segments(RES_CPU)
    uart_segments = [s for s in segments if s.label == uart]
    assert uart_segments
    assert all(s.effective_label == tx_label for s in uart_segments)


def test_second_send_while_busy_rejected():
    network, node = _single_node()
    errors = []

    def app(n):
        def ready():
            frame = Frame(src=1, dst=2, am_type=5, payload=b"a")
            n.radio_driver.send(frame, None)
            try:
                n.radio_driver.send(frame, None)
            except SendError as exc:
                errors.append(exc)

        n.mac.start(ready)

    node.boot(app)
    network.run(seconds(1))
    assert len(errors) == 1


def test_congestion_backoff_on_busy_channel():
    """A continuously busy channel (wide-overlap interferer) forces
    congestion backoffs; the driver gives up after MAX_BACKOFFS."""
    from repro.net.interference import WifiTrafficConfig

    network, node = _single_node()
    # An interferer that is effectively always on and fully in-band.
    interferer = network.add_wifi_interferer(WifiTrafficConfig(
        center_mhz=2480.0,  # right on the node's channel 26
        data_gap_mean_ns=ms(0.3), data_burst_mean_ns=ms(50),
        data_burst_cap_ns=ms(80)))
    done = _send_one(network, node)
    # The send eventually completed or gave up — either way the driver
    # performed multiple backoffs and did not wedge.
    assert node.radio_driver.backoff_count > 1
    assert node.radio_driver._tx_frame is None


def test_tx_powerstate_trace():
    network, node = _single_node()
    _send_one(network, node)
    values = [e.value for e in node.entries()
              if e.res_id == RES_RADIO and e.type_name == "powerstate"]
    # OFF -> VREG -> IDLE -> RX (mac start) -> TX -> RX (fallback)
    assert values[:3] == [1, 2, 3]
    assert 4 in values
    assert values[values.index(4) + 1] == 3


def test_set_tx_power_validation():
    network, node = _single_node()

    def app(n):
        n.radio_driver.set_tx_power(-7)
        assert n.platform.radio.tx_power_dbm == -7
        with pytest.raises(ValueError):
            n.radio_driver.set_tx_power(3)

    node.boot(lambda n: n.scheduler.post_function(lambda: app(node)))
    network.run(ms(10))


def test_rx_while_spi_busy_retries():
    """A frame arriving while the SPI is mid-TX-load queues behind the
    rx-retry timer instead of corrupting the transfer."""
    network, node = _single_node("irq")
    node2 = network.add_node(NodeConfig(node_id=2, mac="csma"))
    got = []

    def app1(n):
        def ready():
            n.am.register_receiver(5, got.append)
        n.mac.start(ready)

    def app2(n):
        def ready():
            n.set_cpu_activity("Tx2")
            frame = Frame(src=2, dst=1, am_type=5, payload=b"y" * 40)
            n.radio_driver.send(frame, None)
        n.mac.start(ready)

    node.boot(app1)
    node2.boot(app2)
    network.run(seconds(1))
    assert node.am.received == len(got) == 1
