"""Smoke tests: every experiment module runs and reports coherently.

The benchmarks assert the tight numeric bands; here we check structure —
every experiment renders, carries its comparisons, and exposes the data
keys its bench relies on — so a broken experiment fails fast in the unit
suite, not only in the (slower) bench run.
"""

import pytest

from repro.experiments import (
    ablation_weighting,
    fig10,
    fig11,
    fig12,
    fig15,
    fig16,
    table1,
    table2,
    table3,
    table4,
    table5,
)

FAST_MODULES = [table1, table2, fig10, fig11, table3, fig15, fig16,
                table4, table5, ablation_weighting]


@pytest.mark.parametrize("module", FAST_MODULES,
                         ids=lambda m: m.__name__.rsplit(".", 1)[-1])
def test_experiment_runs_and_renders(module):
    result = module.run()
    assert result.exp_id
    assert result.title
    text = result.render()
    assert result.exp_id in text
    assert len(text) > 100


def test_table2_measurements_cover_all_states():
    result = table2.run()
    indicators = {tuple(ind) for ind, _ in result.data["measurements"]}
    assert len(indicators) == 8  # all LED combinations observed


def test_fig12_data_keys():
    result = fig12.run()
    for key in ("node1_bounces", "rx_bind_found",
                "remote_activity_mj_on_node1"):
        assert key in result.data


def test_fig15_leak_vs_fixed():
    result = fig15.run()
    assert result.data["fires"] > 0
    assert result.data["fixed_fires"] == 0
    assert result.data["leak_energy_uj"] > 0


def test_fig16_modes_differ():
    result = fig16.run()
    assert result.data["load_dma_ms"] < result.data["load_irq_ms"]


def test_comparisons_have_sane_ratios():
    """Table 3's measured values all land within 25 % of the paper."""
    result = table3.run()
    for name, paper, measured in result.comparisons:
        if paper == 0:
            continue
        assert 0.75 < measured / paper < 1.25, (name, paper, measured)


def test_experiments_are_deterministic():
    a = table3.run(seed=0)
    b = table3.run(seed=0)
    assert a.data["energy_by_activity_mj"] == b.data["energy_by_activity_mj"]
