"""The energy-breakdown regression (Section 2.5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regression import (
    SinkColumn,
    group_intervals,
    solve_breakdown,
    solve_from_currents,
)
from repro.core.timeline import PowerInterval
from repro.errors import RegressionError
from repro.units import ms

QUANTUM = 8.33e-6
VOLTAGE = 3.0


def _interval(t0_ms, t1_ms, states, power_w):
    """An interval with exact (unquantized-ish) pulse count for a given
    aggregate power."""
    dt_s = (t1_ms - t0_ms) * 1e-3
    pulses = int(round(power_w * dt_s / QUANTUM))
    return PowerInterval(
        t0_ns=ms(t0_ms), t1_ns=ms(t1_ms), pulses=pulses,
        states=tuple(sorted(states.items())),
    )


LAYOUT = [
    SinkColumn(1, 1, "LED0"),
    SinkColumn(2, 1, "LED1"),
]


def _blinky_intervals(p_led0=0.0075, p_led1=0.0067, p_const=0.0025):
    """Four long steady states covering all LED combinations."""
    return [
        _interval(0, 1000, {1: 0, 2: 0}, p_const),
        _interval(1000, 2000, {1: 1, 2: 0}, p_const + p_led0),
        _interval(2000, 3000, {1: 0, 2: 1}, p_const + p_led1),
        _interval(3000, 4000, {1: 1, 2: 1}, p_const + p_led0 + p_led1),
    ]


def test_recovers_known_draws():
    result = solve_breakdown(_blinky_intervals(), LAYOUT, QUANTUM, VOLTAGE)
    assert result.power_w["LED0"] == pytest.approx(0.0075, rel=0.01)
    assert result.power_w["LED1"] == pytest.approx(0.0067, rel=0.01)
    assert result.const_power_w == pytest.approx(0.0025, rel=0.02)
    assert result.relative_error < 0.01


def test_current_conversion():
    result = solve_breakdown(_blinky_intervals(), LAYOUT, QUANTUM, VOLTAGE)
    assert result.current_ma("LED0") == pytest.approx(2.5, rel=0.01)
    assert result.const_current_ma == pytest.approx(0.8333, rel=0.02)


def test_power_of_states_reconstruction():
    result = solve_breakdown(_blinky_intervals(), LAYOUT, QUANTUM, VOLTAGE)
    both_on = result.power_of_states([(1, 1), (2, 1)])
    assert both_on == pytest.approx(0.0075 + 0.0067 + 0.0025, rel=0.01)


def test_unobserved_column_dropped():
    layout = LAYOUT + [SinkColumn(3, 1, "Ghost")]
    result = solve_breakdown(_blinky_intervals(), layout, QUANTUM, VOLTAGE)
    assert "Ghost" not in result.power_w
    assert any(c.name == "Ghost" for c in result.dropped_columns)


def test_aliased_columns_detected():
    """Two sinks that always switch together cannot be separated — the
    paper's linear-independence limitation."""
    intervals = [
        _interval(0, 1000, {1: 0, 2: 0}, 0.002),
        _interval(1000, 2000, {1: 1, 2: 1}, 0.010),  # always co-active
    ]
    result = solve_breakdown(intervals, LAYOUT, QUANTUM, VOLTAGE)
    assert any({"LED0", "LED1"} <= set(group)
               for group in result.aliased_groups)
    with pytest.raises(RegressionError):
        solve_breakdown(intervals, LAYOUT, QUANTUM, VOLTAGE, strict=True)


def test_no_intervals_rejected():
    with pytest.raises(RegressionError):
        solve_breakdown([], LAYOUT, QUANTUM, VOLTAGE)


def test_unknown_weighting_rejected():
    with pytest.raises(RegressionError):
        solve_breakdown(_blinky_intervals(), LAYOUT, QUANTUM, VOLTAGE,
                        weighting="vibes")


def test_min_interval_filter():
    intervals = _blinky_intervals() + [
        # A garbage micro-interval that would perturb the fit.
        PowerInterval(ms(4000), ms(4000) + 1000, 5,
                      tuple(sorted({1: 1, 2: 0}.items()))),
    ]
    result = solve_breakdown(intervals, LAYOUT, QUANTUM, VOLTAGE,
                             min_interval_ns=ms(1))
    assert result.power_w["LED0"] == pytest.approx(0.0075, rel=0.01)


def test_group_intervals_merges_same_states():
    intervals = [
        _interval(0, 1000, {1: 1}, 0.01),
        _interval(1000, 2000, {1: 1}, 0.01),
        _interval(2000, 3000, {1: 0}, 0.002),
    ]
    vectors, times, energies = group_intervals(intervals, QUANTUM)
    assert len(vectors) == 2
    on_index = vectors.index((((1, 1)),))
    assert times[on_index] == ms(2000)


def test_multistate_sink_columns():
    layout = [
        SinkColumn(4, 3, "Radio.RX"),
        SinkColumn(4, 4, "Radio.TX"),
    ]
    intervals = [
        _interval(0, 1000, {4: 0}, 0.001),
        _interval(1000, 2000, {4: 3}, 0.001 + 0.0618),
        _interval(2000, 3000, {4: 4}, 0.001 + 0.0522),
    ]
    result = solve_breakdown(intervals, layout, QUANTUM, VOLTAGE)
    assert result.power_w["Radio.RX"] == pytest.approx(0.0618, rel=0.01)
    assert result.power_w["Radio.TX"] == pytest.approx(0.0522, rel=0.01)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=0.001, max_value=0.05),
             min_size=2, max_size=4),
    st.floats(min_value=0.0005, max_value=0.01),
)
def test_recovery_property(draws, const):
    """Property: with every singleton state observed long enough, the
    regression recovers arbitrary per-sink draws to within quantization."""
    layout = [SinkColumn(i + 1, 1, f"S{i}") for i in range(len(draws))]
    intervals = [_interval(0, 5000, {i + 1: 0 for i in range(len(draws))},
                           const)]
    t = 5000
    for i, draw in enumerate(draws):
        states = {j + 1: (1 if j == i else 0) for j in range(len(draws))}
        intervals.append(_interval(t, t + 5000, states, const + draw))
        t += 5000
    result = solve_breakdown(intervals, layout, QUANTUM, VOLTAGE)
    for i, draw in enumerate(draws):
        assert result.power_w[f"S{i}"] == pytest.approx(
            draw, rel=0.02, abs=2 * QUANTUM)
    assert result.const_power_w == pytest.approx(
        const, rel=0.05, abs=2 * QUANTUM)


def test_solve_from_currents_table2_shape():
    rows = [
        ((0, 0, 0), 0.74),
        ((1, 0, 0), 3.32),
        ((0, 1, 0), 3.05),
        ((1, 1, 0), 5.53),
        ((0, 0, 1), 1.62),
        ((1, 0, 1), 4.15),
        ((0, 1, 1), 3.88),
        ((1, 1, 1), 6.30),
    ]
    estimates, const, rel_error = solve_from_currents(
        rows, ("LED0", "LED1", "LED2"))
    # The paper's own Table 2 numbers, from its own measured Y column.
    assert estimates["LED0"] == pytest.approx(2.50, abs=0.02)
    assert estimates["LED1"] == pytest.approx(2.23, abs=0.02)
    assert estimates["LED2"] == pytest.approx(0.83, abs=0.02)
    assert const == pytest.approx(0.79, abs=0.02)
    assert rel_error == pytest.approx(0.0083, abs=0.002)


def test_solve_from_currents_empty_rejected():
    with pytest.raises(RegressionError):
        solve_from_currents([], ())
