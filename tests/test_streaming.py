"""The streaming pipeline: log -> TimelineStream -> EnergyAccumulator.

Two contracts pin the refactor down:

* **Byte-identity** — the streaming path produces an EnergyMap exactly
  equal to the batch path (same float bits, same dict insertion order)
  on real logs from every kind of workload: single-node Blink, the
  cross-node Bounce with proxy binds, and multihop collection — in both
  proxy-folding modes.
* **Bounded memory** — with binds untracked (the ``fold_proxies=False``
  accounting path), the stream's open state and the accumulator's
  pending-segment buffer stay flat as the log grows.
"""

import struct

import numpy as np
import pytest

from repro.core.accounting import (
    EnergyAccumulator,
    build_energy_map,
    stream_energy_map,
)
from repro.core.logger import ENTRY_STRUCT, decode_log, iter_entries
from repro.core.regression import RegressionResult
from repro.core.timeline import TimelineBuilder, TimelineStream
from repro.experiments.common import run_blink
from repro.tos.network import Network
from repro.tos.node import COMPONENT_NAMES, RES_TIMERB, NodeConfig
from repro.units import ms, seconds


def _maps_equal(batch, stream):
    """Exact equality, including the key insertion order the renderers
    see when they iterate the dicts."""
    assert list(batch.energy_j) == list(stream.energy_j)
    assert batch.energy_j == stream.energy_j
    assert list(batch.time_ns) == list(stream.time_ns)
    assert batch.time_ns == stream.time_ns
    assert batch.metered_energy_j == stream.metered_energy_j
    assert batch.reconstructed_energy_j == stream.reconstructed_energy_j
    assert batch.span_ns == stream.span_ns


#: Every analysis backend must reproduce the batch reference exactly;
#: the tests below are parametrized over all of them ("streaming" feeds
#: the accumulator, "columnar" routes the same inputs through the
#: column pipeline).
from repro.core.accounting import ANALYSIS_BACKENDS as BACKENDS


def _stream_map_for(node, timeline, regression, fold_proxies,
                    backend="streaming"):
    return stream_energy_map(
        iter_entries(node.logger.raw_bytes()),
        regression,
        node.registry,
        COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=fold_proxies,
        idle_name=node.registry.name_of(node.idle),
        end_time_ns=timeline.end_time_ns,
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        backend=backend,
    )


def _assert_node_streams_identically(node, backend="streaming"):
    timeline = node.timeline()
    regression = node.regression(timeline)
    for fold in (False, True):
        batch = build_energy_map(
            timeline, regression, node.registry, COMPONENT_NAMES,
            node.platform.icount.nominal_energy_per_pulse_j,
            fold_proxies=fold,
            idle_name=node.registry.name_of(node.idle),
            backend="streaming",
        )
        stream = _stream_map_for(node, timeline, regression, fold,
                                 backend=backend)
        _maps_equal(batch, stream)


@pytest.mark.parametrize("backend", BACKENDS)
def test_blink_streams_identically(backend):
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    _assert_node_streams_identically(node, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bounce_network_streams_identically(backend):
    """Cross-node Bounce exercises proxies, binds, and remote labels —
    the retrospective part of the fold path."""
    from repro.apps.bounce import BounceApp

    network = Network(seed=1)
    network.add_node(NodeConfig(node_id=1, mac="csma"))
    network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(3))
    for node_id in (1, 4):
        _assert_node_streams_identically(network.node(node_id), backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_collection_network_streams_identically(backend):
    """Multihop collection: forwarding queues, multi-activity timers."""
    from repro.apps.collection import build_line_topology

    network = Network(seed=5)
    for node_id in (10, 11, 12):
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
    apps = build_line_topology(network, [10, 11, 12], root_id=10,
                               sample_period_ns=seconds(4))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(seconds(10))
    for node_id in (10, 11, 12):
        _assert_node_streams_identically(network.node(node_id), backend)


def test_timeline_stream_matches_builder_on_blink():
    """The stream's emitted intervals/segments equal the batch lists."""
    node, _app, _sim = run_blink(seed=2, duration_ns=seconds(4))
    timeline = node.timeline()
    intervals, segments, multis = [], [], []
    stream = TimelineStream(
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        on_interval=intervals.append,
        on_segment=segments.append,
        on_multi_segment=multis.append,
    )
    stream.feed_all(iter_entries(node.logger.raw_bytes()),
                    timeline.end_time_ns)
    assert intervals == timeline.power_intervals()
    batch_segments = [
        seg for res_id in timeline.single_device_ids()
        for seg in timeline.activity_segments(res_id)
    ]
    # The stream interleaves devices by close time; compare as sets of
    # value tuples (each segment appears exactly once on both sides).
    def seg_key(seg):
        return (seg.res_id, seg.t0_ns, seg.t1_ns, seg.label, seg.bound_to)

    assert sorted(map(seg_key, segments)) == \
        sorted(map(seg_key, batch_segments))
    batch_multis = [
        (m.res_id, m.t0_ns, m.t1_ns, m.labels)
        for res_id in timeline.multi_device_ids()
        for m in timeline.multi_activity_segments(res_id)
    ]
    assert sorted((m.res_id, m.t0_ns, m.t1_ns, m.labels) for m in multis) \
        == sorted(batch_multis)


def test_iter_entries_is_lazy_and_equals_decode():
    node, _app, _sim = run_blink(seed=0, duration_ns=seconds(2))
    raw = node.logger.raw_bytes()
    iterator = iter_entries(raw)
    first = next(iterator)
    assert first.seq == 0
    assert [first, *iterator] == decode_log(raw)


# -- bounded memory ---------------------------------------------------------


RED = 0x0101
BLUE = 0x0102


def _synthetic_log(n_cycles):
    """A log that alternates activity changes and power toggles so
    segments and intervals keep closing; length grows with n_cycles."""
    rows = [(6, 0, 0, 0, 0)]  # boot: device 0 baseline
    t = 100
    for i in range(n_cycles):
        rows.append((2, 0, t, i * 7, RED if i % 2 else BLUE))  # act change
        rows.append((1, 0, t + 40, i * 7 + 3, i % 2))  # power toggle
        t += 100
    raw = b"".join(ENTRY_STRUCT.pack(*row) for row in rows)
    return raw, t * 1000


def _minimal_regression():
    return RegressionResult(
        columns=[], power_w={}, const_power_w=0.001, voltage=3.0,
        y=np.zeros(1), y_hat=np.zeros(1), weights=np.ones(1),
        group_states=[], group_time_ns=[], group_energy_j=[],
    )


@pytest.mark.parametrize("fold", [False])
def test_stream_open_state_independent_of_log_length(fold):
    from repro.core.labels import ActivityRegistry

    registry = ActivityRegistry()
    peaks = []
    for n_cycles in (200, 800, 3200):
        raw, end_ns = _synthetic_log(n_cycles)
        accumulator = EnergyAccumulator(
            _minimal_regression(), registry, {0: "CPU"}, 1e-6,
            fold_proxies=fold, single_res_ids=[0], end_time_ns=end_ns,
        )
        accumulator.feed_all(iter_entries(raw))
        # The O(1)-maintained high-water mark must bound the polled
        # live state (they are computed independently).
        assert accumulator.stream.open_items() \
            <= accumulator.stream.peak_open_items
        peaks.append((accumulator.stream.peak_open_items,
                      accumulator.peak_pending_segments))
    # 16x more log, same high-water marks: the streaming contract.
    assert peaks[0] == peaks[1] == peaks[2]
    open_peak, pending_peak = peaks[0]
    assert open_peak <= 4
    assert pending_peak <= 4


def test_stream_peak_flat_on_real_blink_as_log_grows():
    """On real Blink logs the stream's live state stays at its small
    plateau while the materialized reconstruction grows with runtime."""
    def measure(duration_s):
        node, _app, _sim = run_blink(seed=1, duration_ns=seconds(duration_s))
        timeline = node.timeline()
        total_segments = sum(
            len(timeline.activity_segments(res_id))
            for res_id in timeline.single_device_ids())
        accumulator = EnergyAccumulator(
            node.regression(timeline), node.registry, COMPONENT_NAMES,
            node.platform.icount.nominal_energy_per_pulse_j,
            fold_proxies=False,
            idle_name=node.registry.name_of(node.idle),
            single_res_ids=[d.res_id for d in node._single_devices()],
            multi_res_ids=[RES_TIMERB],
            end_time_ns=timeline.end_time_ns,
        )
        accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
        return (total_segments, accumulator.stream.peak_open_items,
                accumulator.peak_pending_segments)

    total_short, open_short, pending_short = measure(8)
    total_long, open_long, pending_long = measure(32)
    assert total_long > 3 * total_short  # the batch product keeps growing
    assert open_long == open_short  # ...the live state does not
    assert pending_long == pending_short
    assert open_long < 32 and pending_long < 32
