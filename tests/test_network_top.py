"""Network-wide live profiling and remaining channel/AM coverage."""

import pytest

from repro.core.topq import NetworkTop, QuantoTop
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import ms, seconds


def test_network_top_aggregates_across_nodes():
    from repro.apps.bounce import BounceApp

    network = Network(seed=0)
    node1 = network.add_node(NodeConfig(node_id=1, mac="csma",
                                        enable_counters=True))
    node4 = network.add_node(NodeConfig(node_id=4, mac="csma",
                                        enable_counters=True))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    tops = {}

    def boot(node, app):
        def start(n):
            app.start(n)
            top = QuantoTop(n, refresh_ns=seconds(1))
            top.start()
            tops[n.node_id] = top

        return start

    node1.boot(boot(node1, app1))
    node4.boot(boot(node4, app4))
    network.run(seconds(6))

    net_top = NetworkTop(tops, network.registry)
    totals = net_top.totals()
    # Both nodes' idle floors are visible ...
    assert 1 in totals["1:Idle"]
    assert 4 in totals["4:Idle"]
    # ... and node 4's activity spent live-counted energy on node 1.
    assert totals.get("4:BounceApp", {}).get(1, 0.0) > 0.0
    text = net_top.render()
    assert "network quanto-top (2 nodes)" in text
    assert "4:BounceApp" in text


def test_network_top_requires_nodes():
    with pytest.raises(ValueError):
        NetworkTop({}, None)


def test_localized_interferer_audibility():
    """An interference source audible to one node does not raise CCA
    busy for another (the deployment case study's mechanism)."""
    from repro.net.interference import WifiTrafficConfig

    network = Network(seed=0)
    near = network.add_node(NodeConfig(node_id=1, mac="csma",
                                       radio_channel_number=17))
    far = network.add_node(NodeConfig(node_id=2, mac="csma",
                                      radio_channel_number=17))
    network.add_wifi_interferer(
        WifiTrafficConfig(data_gap_mean_ns=ms(1),
                          data_burst_mean_ns=ms(200),
                          data_burst_cap_ns=ms(400)),
        audible_to={1})
    results = {}

    def boot(node):
        def start(n):
            n.mac.start(lambda: None)

        return start

    near.boot(boot(near))
    far.boot(boot(far))
    network.run(seconds(1))
    # Sample CCA on both radios while the interferer bursts.
    near_clear = near.platform.radio.cca_clear()
    far_clear = far.platform.radio.cca_clear()
    assert far_clear is True
    assert near_clear is False


def test_am_explicit_activity_override():
    from repro.hw.radio import Frame

    network = Network(seed=0)
    sender = network.add_node(NodeConfig(node_id=1, mac="csma"))
    receiver = network.add_node(NodeConfig(node_id=2, mac="csma"))
    got = []

    def recv_app(n):
        n.am.register_receiver(7, got.append)
        n.mac.start()

    def send_app(n):
        override = n.registry.label(1, "Override")

        def ready():
            n.am.send(2, 7, b"z", activity=override)

        n.mac.start(ready)

    receiver.boot(recv_app)
    sender.boot(send_app)
    network.run(seconds(1))
    assert len(got) == 1
    assert got[0].activity == sender.registry.label(1, "Override").encode()


def test_am_default_receiver_and_dst_filtering():
    network = Network(seed=0)
    sender = network.add_node(NodeConfig(node_id=1, mac="csma"))
    receiver = network.add_node(NodeConfig(node_id=2, mac="csma"))
    bystander = network.add_node(NodeConfig(node_id=3, mac="csma"))
    default_got = []
    bystander_got = []

    def recv_app(n):
        n.am.set_default_receiver(default_got.append)  # no typed receiver
        n.mac.start()

    def bystander_app(n):
        n.am.set_default_receiver(bystander_got.append)
        n.mac.start()

    def send_app(n):
        n.mac.start(lambda: n.am.send(2, 99, b"q"))

    receiver.boot(recv_app)
    bystander.boot(bystander_app)
    sender.boot(send_app)
    network.run(seconds(1))
    # The addressed node's default receiver got it; the bystander's AM
    # layer dropped it (wrong destination) even though its radio heard it.
    assert len(default_got) == 1
    assert bystander_got == []
    assert bystander.platform.radio.frames_received == 1
