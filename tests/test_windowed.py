"""Windowed (online) energy accounting.

The contract that makes live windows trustworthy: the window sequence
*folds* back to the batch :func:`build_energy_map` result bit-for-bit —
same float bits, same dict insertion order — on every workload, under
both analysis backends, for any stride.  Each snapshot carries the
accumulator's exact cumulative sums (the same IEEE-754 add sequence the
batch path performs), so :func:`fold_windows` is reconstruction, not
re-summation.  Also pinned: bounded memory via the retention deque,
gap-free window indices, the sliding view, and misuse errors.
"""

import pytest

from repro.core.accounting import (
    ANALYSIS_BACKENDS as BACKENDS,
    WindowedAccumulator,
    build_energy_map,
    fold_windows,
)
from repro.core.logger import iter_entries
from repro.errors import WindowingError
from repro.experiments.common import run_blink
from repro.tos.node import COMPONENT_NAMES, RES_TIMERB
from repro.units import ms, seconds


def windowed_for(node, timeline, regression, stride_ns, **kwargs):
    return WindowedAccumulator(
        regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        stride_ns=stride_ns,
        idle_name=node.registry.name_of(node.idle),
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        end_time_ns=timeline.end_time_ns,
        **kwargs,
    )


def assert_folds_to_batch(node, stride_ns, backend):
    timeline = node.timeline()
    regression = node.regression(timeline)
    batch = build_energy_map(
        timeline, regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        backend=backend,
    )
    accumulator = windowed_for(node, timeline, regression, stride_ns,
                               retain=None)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    folded = fold_windows(list(accumulator.windows))
    assert list(folded.energy_j) == list(batch.energy_j)  # insertion order
    assert folded.energy_j == batch.energy_j  # float bits
    assert list(folded.time_ns) == list(batch.time_ns)
    assert folded.time_ns == batch.time_ns
    assert folded.metered_energy_j == batch.metered_energy_j
    assert folded.reconstructed_energy_j == batch.reconstructed_energy_j
    assert folded.span_ns == batch.span_ns
    return accumulator


# -- the fold contract -------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("stride_s", [0.25, 1, 3, 100])
def test_blink_windows_fold_to_batch(backend, stride_s):
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    accumulator = assert_folds_to_batch(node, int(seconds(stride_s)),
                                        backend)
    if stride_s == 100:  # one giant window: everything is in the final
        assert accumulator.windows_emitted == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_network_windows_fold_to_batch(backend):
    from repro.apps.bounce import BounceApp
    from repro.tos.network import Network
    from repro.tos.node import NodeConfig

    network = Network(seed=1)
    network.add_node(NodeConfig(node_id=1, mac="csma"))
    network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(3))
    for node_id in (1, 4):
        assert_folds_to_batch(network.node(node_id), int(ms(400)), backend)


def test_windows_are_gap_free_and_deltas_cover_the_run():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    accumulator = windowed_for(node, timeline, regression,
                               int(seconds(1)), retain=None)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    snapshots = list(accumulator.windows)
    assert [s.index for s in snapshots] == list(range(len(snapshots)))
    assert snapshots[-1].final and not any(s.final for s in snapshots[:-1])
    for earlier, later in zip(snapshots, snapshots[1:]):
        assert earlier.t1_ns == later.t0_ns or later.final
    # Interval counts partition the run.
    assert sum(s.intervals for s in snapshots) == \
        accumulator._intervals_seen
    # Delta energies are display-quality: they sum to ~the total.
    total = sum(value for s in snapshots for value in s.energy_j.values())
    assert total == pytest.approx(
        accumulator.map.reconstructed_energy_j, rel=1e-9)


def test_retention_bounds_snapshot_memory():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    accumulator = windowed_for(node, timeline, regression, int(ms(100)),
                               retain=4)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    assert len(accumulator.windows) == 4  # deque bound
    assert accumulator.windows_emitted > 4  # ...but all were emitted
    # The last retained window still carries the exact final state.
    folded = fold_windows(list(accumulator.windows))
    assert folded.energy_j == accumulator.map.energy_j


def test_on_window_callback_sees_every_close():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    seen = []
    accumulator = windowed_for(node, timeline, regression,
                               int(seconds(1)), on_window=seen.append)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    assert len(seen) == accumulator.windows_emitted
    assert seen[-1].final


def test_live_breakdown_tracks_the_stream():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    accumulator = windowed_for(node, timeline, regression, int(seconds(1)))
    entries = list(iter_entries(node.logger.raw_bytes()))
    for entry in entries[: len(entries) // 2]:
        accumulator.feed(entry)
    mid = accumulator.live_breakdown()
    assert 0 < mid["reconstructed_energy_j"]
    for entry in entries[len(entries) // 2:]:
        accumulator.feed(entry)
    accumulator.finish()
    done = accumulator.live_breakdown()
    assert done["reconstructed_energy_j"] \
        >= mid["reconstructed_energy_j"]
    assert done["energy_j"] == accumulator.map.energy_j


def test_sliding_view_merges_recent_strides():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    accumulator = windowed_for(node, timeline, regression,
                               int(seconds(1)), retain=None)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    view = accumulator.sliding(int(seconds(3)))
    assert view["windows"] == 3
    recent = list(accumulator.windows)[-3:]
    assert view["t0_ns"] == recent[0].t0_ns
    assert view["intervals"] == sum(s.intervals for s in recent)
    merged = {}
    for snapshot in recent:
        for key, value in snapshot.energy_j.items():
            merged[key] = merged.get(key, 0.0) + value
    assert view["energy_j"] == merged


# -- misuse ------------------------------------------------------------------


def test_bad_stride_rejected():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(2))
    timeline = node.timeline()
    regression = node.regression(timeline)
    with pytest.raises(WindowingError, match="stride"):
        windowed_for(node, timeline, regression, 0)


def test_fold_of_nothing_rejected():
    with pytest.raises(WindowingError, match="empty"):
        fold_windows([])


def test_sliding_misuse_rejected():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    regression = node.regression(timeline)
    accumulator = windowed_for(node, timeline, regression,
                               int(seconds(1)), retain=2)
    accumulator.feed_all(iter_entries(node.logger.raw_bytes()))
    with pytest.raises(WindowingError, match="multiple"):
        accumulator.sliding(int(seconds(1)) + 1)
    with pytest.raises(WindowingError, match="retention"):
        accumulator.sliding(int(seconds(5)))
