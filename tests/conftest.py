"""Shared fixtures.

The 48-second Blink run is the workhorse of the integration tests; it is
session-scoped because it is deterministic and read-only for assertions.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import seconds


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def node(sim):
    """A standalone (no-radio) node."""
    return QuantoNode(sim, NodeConfig(node_id=1), rng_factory=RngFactory(0))


@pytest.fixture(scope="session")
def blink_run():
    """One deterministic 48 s Blink run shared by integration tests."""
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1), rng_factory=RngFactory(0))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))
    return sim, node, app


@pytest.fixture(scope="session")
def bounce_run():
    """One deterministic two-node Bounce run."""
    from repro.apps.bounce import BounceApp
    from repro.tos.network import Network
    from repro.units import ms

    network = Network(seed=0)
    node1 = network.add_node(NodeConfig(node_id=1, mac="csma"))
    node4 = network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(4))
    return network, (node1, node4), (app1, app4)
