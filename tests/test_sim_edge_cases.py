"""Discrete-event engine edge cases.

The engine's determinism contract lives or dies on these: FIFO ordering
of same-timestamp events, cancellation of events in every lifecycle
state (queued, popped, fired), scheduling from inside callbacks at the
current instant, and ``run(until=...)`` boundary semantics.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


# -- FIFO ordering of same-timestamp events -------------------------------


def test_same_timestamp_fifo_across_scheduling_apis():
    sim = Simulator()
    order = []
    sim.at(100, order.append, "at-1")
    sim.at(50, lambda: sim.after(50, order.append, "after"))  # lands at 100
    sim.at(100, order.append, "at-2")
    sim.run()
    # FIFO follows *scheduling* order: both at(100) calls preceded the
    # after(50) call (which only happened at t=50).
    assert order == ["at-1", "at-2", "after"]


def test_fifo_preserved_around_cancelled_neighbors():
    sim = Simulator()
    order = []
    sim.at(10, order.append, "a")
    doomed = sim.at(10, order.append, "x")
    sim.at(10, order.append, "b")
    doomed.cancel()
    sim.run()
    assert order == ["a", "b"]


# -- cancellation lifecycle -----------------------------------------------


def test_cancel_already_fired_event_is_harmless():
    sim = Simulator()
    fired = []
    event = sim.at(10, fired.append, "first")
    sim.at(20, fired.append, "second")
    sim.run(until=15)
    assert fired == ["first"]
    # The event was popped and executed; cancelling the stale handle must
    # not disturb anything still queued.
    event.cancel()
    event.cancel()  # double-cancel, equally harmless
    sim.run()
    assert fired == ["first", "second"]


def test_cancel_pending_sibling_from_same_timestamp_callback():
    # An earlier same-timestamp callback cancels a later one that is
    # still in the queue: the victim must be skipped when popped.
    sim = Simulator()
    fired = []

    def killer():
        fired.append("killer")
        victim.cancel()

    sim.at(10, killer)
    victim = sim.at(10, fired.append, "victim")
    sim.run()
    assert fired == ["killer"]


def test_cancel_fired_sibling_from_same_timestamp_callback():
    # The reverse order: by the time the would-be killer runs, the victim
    # already fired — cancelling its popped handle changes nothing.
    sim = Simulator()
    fired = []
    victim = sim.at(10, fired.append, "victim")
    sim.at(10, lambda: (fired.append("late-killer"), victim.cancel()))
    sim.at(20, fired.append, "after")
    sim.run()
    assert fired == ["victim", "late-killer", "after"]


def test_cancel_event_from_its_own_callback():
    sim = Simulator()
    fired = []

    def self_cancel():
        fired.append("ran")
        handle.cancel()  # already popped: a no-op, not an error

    handle = sim.at(5, self_cancel)
    sim.run()
    assert fired == ["ran"]
    assert sim.pending() == 0


def test_pending_counts_exclude_cancelled():
    sim = Simulator()
    keep = sim.at(10, lambda: None)
    drop = sim.at(20, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0
    assert keep.alive  # firing does not retroactively flag the handle


def test_step_skips_dead_events():
    sim = Simulator()
    fired = []
    dead = sim.at(10, fired.append, "dead")
    sim.at(20, fired.append, "live")
    dead.cancel()
    assert sim.step()
    assert fired == ["live"]
    assert not sim.step()


# -- scheduling from inside callbacks -------------------------------------


def test_schedule_at_current_timestamp_from_callback():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.at(sim.now, order.append, "inner-at")
        sim.call_now(order.append, "inner-callnow")

    sim.at(100, outer)
    sim.at(100, order.append, "peer")
    sim.run()
    # Events injected at the current instant run after everything already
    # queued for that instant, in injection order.
    assert order == ["outer", "peer", "inner-at", "inner-callnow"]
    assert sim.now == 100


def test_nested_same_instant_scheduling_terminates_with_max_events():
    sim = Simulator()

    def respawn():
        sim.call_now(respawn)

    sim.at(10, respawn)
    with pytest.raises(SimulationError):
        sim.run(max_events=50)


def test_callback_cannot_schedule_in_the_past():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.at(sim.now - 1, lambda: None)
        except SimulationError as exc:
            errors.append(exc)

    sim.at(100, bad)
    sim.run()
    assert len(errors) == 1


# -- run(until=...) boundary semantics ------------------------------------


def test_until_boundary_event_runs_and_clock_stops_exactly():
    sim = Simulator()
    fired = []
    sim.at(1_000, fired.append, "on-boundary")
    sim.at(1_001, fired.append, "past")
    sim.run(until=1_000)
    assert fired == ["on-boundary"]
    assert sim.now == 1_000


def test_event_scheduled_on_boundary_from_boundary_callback_runs():
    sim = Simulator()
    fired = []

    def chain():
        fired.append("first")
        sim.at(sim.now, fired.append, "chained")

    sim.at(1_000, chain)
    sim.run(until=1_000)
    # The chained event sits exactly on the boundary: it belongs to this
    # window and must run before the clock freezes.
    assert fired == ["first", "chained"]
    assert sim.now == 1_000


def test_until_with_only_cancelled_events_advances_clock():
    sim = Simulator()
    event = sim.at(500, lambda: None)
    event.cancel()
    sim.run(until=2_000)
    assert sim.now == 2_000
    assert sim.pending() == 0


def test_until_in_empty_simulator_advances_clock():
    sim = Simulator()
    sim.run(until=750)
    assert sim.now == 750


def test_resume_after_until_keeps_order():
    sim = Simulator()
    fired = []
    for t in (100, 200, 300):
        sim.at(t, fired.append, t)
    sim.run(until=150)
    assert fired == [100]
    sim.run(until=250)
    assert fired == [100, 200]
    sim.run()
    assert fired == [100, 200, 300]


def test_until_earlier_than_now_leaves_clock_alone():
    sim = Simulator()
    sim.run(until=1_000)
    sim.run(until=500)  # window already behind us: nothing to do
    assert sim.now == 1_000
