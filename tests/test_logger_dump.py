"""Stop-and-dump logging (paper §4.4's first collection approach)."""

import pytest

from repro.core.logger import DUMP_CYCLES_PER_ENTRY
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import seconds


@pytest.fixture()
def dump_run():
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(
        sim,
        NodeConfig(node_id=1, logger_buffer_entries=64,
                   logger_auto_dump=True),
        rng_factory=RngFactory(0))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))
    return sim, node, app


def test_dump_cycles_complete_and_logging_resumes(dump_run):
    sim, node, app = dump_run
    assert node.logger.dumps_completed >= 2
    assert not node.logger.stopped_on_overflow
    # Records continued to land after the first dump.
    assert node.logger.records_written > 64 * 2


def test_dump_blackout_loses_events(dump_run):
    """The mode's honest cost: events during a dump are lost."""
    sim, node, app = dump_run
    assert node.logger.records_dropped > 0


def test_dump_ships_to_backchannel(dump_run):
    sim, node, app = dump_run
    raw = node.logger.raw_bytes()
    # Everything recorded is either dumped or still resident.
    assert len(raw) == node.logger.records_written * 12
    # And the cost of shipping was paid in CPU cycles.
    assert node.logger.dump_cycles_total >= \
        node.logger.dumps_completed * 64 * DUMP_CYCLES_PER_ENTRY * 0.5


def test_dumped_log_still_decodes_and_analyzes(dump_run):
    sim, node, app = dump_run
    entries = node.entries()
    times = [e.time_us for e in entries]
    assert times == sorted(times)
    # Analysis runs; the blackout windows make attribution coarser but
    # the LED draws remain identifiable from the surviving intervals.
    regression = node.regression()
    assert regression.current_ma("LED0") == pytest.approx(2.50, rel=0.1)


def test_dump_without_scheduler_falls_back_to_stop():
    from repro.core.logger import QuantoLogger, TYPE_POWERSTATE
    from repro.hw.catalog import default_actual_profile
    from repro.hw.mcu import Mcu
    from repro.hw.power import PowerRail
    from repro.meter.icount import ICountMeter

    sim = Simulator()
    rail = PowerRail(sim)
    mcu = Mcu(sim, rail, default_actual_profile())
    logger = QuantoLogger(mcu, ICountMeter(rail), buffer_entries=2,
                          auto_dump=True, scheduler=None)

    def body():
        for i in range(4):
            logger.record(TYPE_POWERSTATE, 1, i)

    mcu.post_task(body)
    sim.run()
    assert logger.stopped_on_overflow
