"""Smoke tests for the extension and comparator experiments."""

import pytest

from repro.experiments import (
    ablation_model_vs_meter,
    ablation_proxies,
    ext_collection,
    ext_txpower,
)


def test_model_vs_meter_gap():
    result = ablation_model_vs_meter.run()
    # The whole point: metering beats the datasheet model by an order of
    # magnitude on hardware that differs from its datasheet.
    assert result.data["mean_abs_err_quanto_pct"] * 5 < \
        result.data["mean_abs_err_model_pct"]
    assert result.data["model_total_mj"] > result.data["truth_total_mj"]


def test_proxy_folding_conserves_total():
    result = ablation_proxies.run()
    assert result.data["totals_match"]
    assert result.data["remote_folded_mj"] >= \
        result.data["remote_unfolded_mj"]


def test_collection_experiment():
    result = ext_collection.run()
    assert result.data["delivered"] >= 5
    assert result.data["leaf_remote_fraction"] > 0.0
    assert "12:Collect" in result.data["by_activity_mj"]


@pytest.mark.slow
def test_txpower_sweep_monotone():
    result = ext_txpower.run()
    assert result.data["monotone_pairs"] >= 6
    draws = [r["tx_ma"] for r in result.data["results"]]
    assert draws[0] > draws[-1]
