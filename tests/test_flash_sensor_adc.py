"""Flash, sensor, and analog-block hardware models."""

import pytest

from repro.errors import HardwareError
from repro.hw.adc import Adc, Dac, VoltageReference
from repro.hw.catalog import default_actual_profile
from repro.hw.flash import (
    PAGE_PROGRAM_NS,
    WAKEUP_NS,
    ExternalFlash,
)
from repro.hw.power import PowerRail
from repro.hw.sensor import (
    MEASURE_HUMIDITY_NS,
    MEASURE_TEMPERATURE_NS,
    Sht11Sensor,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory


def _flash():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    flash = ExternalFlash(sim, rail, default_actual_profile())
    return sim, rail, flash


def test_flash_wake_then_program_then_ready():
    sim, rail, flash = _flash()
    log = []
    flash.set_ready_listener(lambda state, busy: log.append((sim.now, state)))
    done = []
    flash.wake(lambda: flash.program_page(3, b"data", lambda: done.append(
        sim.now)))
    sim.run()
    assert done == [WAKEUP_NS + PAGE_PROGRAM_NS]
    states = [state for _, state in log]
    assert states == ["STANDBY", "WRITE", "STANDBY"]


def test_flash_stores_and_reads_back():
    sim, rail, flash = _flash()
    payload = b"quanto!"
    result = []

    def read():
        flash.read_page(3, len(payload), result.append)

    flash.wake(lambda: flash.program_page(3, payload, read))
    sim.run()
    assert result == [payload]


def test_flash_erase_clears_page():
    sim, rail, flash = _flash()
    result = []

    def erase():
        flash.erase_page(3, read)

    def read():
        flash.read_page(3, 4, result.append)

    flash.wake(lambda: flash.program_page(3, b"data", erase))
    sim.run()
    assert result == [b"\xff\xff\xff\xff"]


def test_flash_busy_rejected():
    sim, rail, flash = _flash()
    flash.wake(lambda: None)
    with pytest.raises(HardwareError):
        flash.wake(lambda: None)


def test_flash_power_down_draw():
    sim, rail, flash = _flash()
    assert flash.state == "POWER_DOWN"
    # Default profile zeroes the power-down draw (folded into baseline).
    assert rail.current() == pytest.approx(0.0, abs=1e-9)


def test_flash_bad_page_rejected():
    sim, rail, flash = _flash()
    done = []
    flash.wake(lambda: done.append(sim.now))
    sim.run()
    with pytest.raises(HardwareError):
        flash.program_page(1 << 20, b"x", lambda: None)


# -- SHT11 ---------------------------------------------------------------


def _sensor():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    sensor = Sht11Sensor(sim, rail, rng=RngFactory(0).stream("sht"))
    return sim, rail, sensor


def test_sensor_measurement_timing():
    sim, rail, sensor = _sensor()
    got = []
    sensor.measure_humidity(lambda v: got.append((sim.now, v)))
    sim.run()
    assert got[0][0] == MEASURE_HUMIDITY_NS
    assert 0 <= got[0][1] <= 100
    sensor.measure_temperature(lambda v: got.append((sim.now, v)))
    sim.run()
    assert got[1][0] == MEASURE_HUMIDITY_NS + MEASURE_TEMPERATURE_NS


def test_sensor_busy_rejected():
    sim, rail, sensor = _sensor()
    sensor.measure_humidity(lambda v: None)
    with pytest.raises(HardwareError):
        sensor.measure_temperature(lambda v: None)


def test_sensor_draw_while_measuring():
    sim, rail, sensor = _sensor()
    sensor.measure_humidity(lambda v: None)
    assert rail.current() == pytest.approx(0.55e-3)
    sim.run()
    assert rail.current() == pytest.approx(0.3e-6)


def test_sensor_listener_sees_states():
    sim, rail, sensor = _sensor()
    states = []
    sensor.set_listener(states.append)
    sensor.measure_humidity(lambda v: None)
    sim.run()
    assert states == ["MEASURING", "IDLE"]


# -- ADC / DAC / VRef ------------------------------------------------------


def _analog():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    profile = default_actual_profile()
    vref = VoltageReference(rail, profile)
    adc = Adc(sim, rail, profile, vref)
    dac = Dac(rail, profile)
    return sim, rail, vref, adc, dac


def test_adc_requires_vref():
    sim, rail, vref, adc, dac = _analog()
    with pytest.raises(HardwareError):
        adc.convert(4, lambda values: None)


def test_adc_conversion_completes():
    sim, rail, vref, adc, dac = _analog()
    vref.on()
    got = []
    adc.convert(4, got.append)
    assert adc.converting
    sim.run()
    assert len(got[0]) == 4
    assert not adc.converting
    assert adc.conversions == 1


def test_adc_busy_and_bad_args():
    sim, rail, vref, adc, dac = _analog()
    vref.on()
    adc.convert(2, lambda v: None)
    with pytest.raises(HardwareError):
        adc.convert(2, lambda v: None)
    sim.run()
    with pytest.raises(HardwareError):
        adc.convert(0, lambda v: None)


def test_vref_draw_and_idempotence():
    sim, rail, vref, adc, dac = _analog()
    vref.on()
    vref.on()
    assert rail.current() == pytest.approx(500e-6)
    vref.off()
    assert rail.current() == 0.0


def test_dac_modes():
    sim, rail, vref, adc, dac = _analog()
    dac.enable("CONVERTING-7")
    assert rail.current() == pytest.approx(700e-6)
    dac.enable("CONVERTING-2")
    assert rail.current() == pytest.approx(50e-6)
    dac.disable()
    assert rail.current() == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(HardwareError):
        dac.enable("CONVERTING-9")
