"""The Network assembly surface."""

import pytest

from repro.errors import NetworkError
from repro.net.interference import WifiTrafficConfig
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import seconds


def test_duplicate_node_id_rejected():
    network = Network(seed=0)
    network.add_node(NodeConfig(node_id=1))
    with pytest.raises(NetworkError):
        network.add_node(NodeConfig(node_id=1))


def test_nodes_share_registry_and_channel():
    network = Network(seed=0)
    a = network.add_node(NodeConfig(node_id=1))
    b = network.add_node(NodeConfig(node_id=2))
    assert a.registry is b.registry
    # Activity names resolve to the same ids across nodes.
    assert a.activity("X").aid == b.activity("X").aid


def test_node_lookup():
    network = Network(seed=0)
    node = network.add_node(NodeConfig(node_id=3))
    assert network.node(3) is node
    with pytest.raises(NetworkError):
        network.node(99)


def test_interferers_start_with_run():
    network = Network(seed=0)
    network.add_node(NodeConfig(node_id=1))
    interferer = network.add_wifi_interferer(
        WifiTrafficConfig(), name="ap1")
    assert interferer.burst_count == 0
    network.boot_all({})
    network.run(seconds(5))
    assert interferer.burst_count > 10


def test_boot_all_with_partial_apps():
    network = Network(seed=0)
    network.add_node(NodeConfig(node_id=1))
    network.add_node(NodeConfig(node_id=2))
    started = []
    network.boot_all({1: lambda n: started.append(n.node_id)})
    network.run(seconds(1))
    assert started == [1]


def test_two_interferers_compose():
    network = Network(seed=0)
    network.add_wifi_interferer(WifiTrafficConfig(center_mhz=2437.0),
                                name="ap1")
    network.add_wifi_interferer(WifiTrafficConfig(center_mhz=2462.0),
                                name="ap2")
    assert len(network.interferers) == 2
    # Distinct rng streams: the two processes differ.
    network.boot_all({})
    network.run(seconds(10))
    assert network.interferers[0].burst_count != \
        network.interferers[1].burst_count
