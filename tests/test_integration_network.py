"""Network-wide integration: cross-node attribution and merging."""

import pytest

from repro.core.netmerge import merge_energy_maps
from repro.tos.node import RES_CPU, RES_RADIO
from repro.units import ms, to_mj


def test_hidden_field_carries_origin_across_hops(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    remote = node1.registry.label(4, "BounceApp")
    # Node 1's radio was painted with node 4's activity while bouncing
    # node 4's packet back.
    timeline = node1.timeline()
    radio_segments = timeline.activity_segments(RES_RADIO)
    assert any(s.label == remote for s in radio_segments)


def test_rx_proxy_bound_to_remote_activity(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    remote = node1.registry.label(4, "BounceApp")
    proxy = node1.proxies.label("pxy_RX")
    timeline = node1.timeline()
    cpu_segments = timeline.activity_segments(RES_CPU)
    bound = [s for s in cpu_segments
             if s.label == proxy and s.bound_to is not None]
    assert bound
    assert any(s.effective_label == remote for s in bound)


def test_uart_proxy_chains_to_remote_activity(bounce_run):
    """int_UART0RX fragments bind to pxy_RX which binds to the remote
    activity: the transitive chain from Figure 12(b)."""
    network, (node1, node4), (app1, app4) = bounce_run
    remote = node1.registry.label(4, "BounceApp")
    uart = node1.proxies.label("int_UART0RX")
    timeline = node1.timeline()
    cpu_segments = timeline.activity_segments(RES_CPU)
    chained = [s for s in cpu_segments
               if s.label == uart and s.effective_label == remote]
    assert chained


def test_merged_network_report(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    maps = {
        1: node1.energy_map(fold_proxies=True),
        4: node4.energy_map(fold_proxies=True),
    }
    report = merge_energy_maps(maps)
    # Both app activities consumed energy on both nodes.
    assert report.spread["4:BounceApp"].get(1, 0.0) > 0.0
    assert report.spread["4:BounceApp"].get(4, 0.0) > 0.0
    assert report.spread["1:BounceApp"].get(1, 0.0) > 0.0
    assert report.spread["1:BounceApp"].get(4, 0.0) > 0.0
    # A bounced packet's cost is spread across the network.
    assert 0.1 < report.remote_fraction("4:BounceApp", 4) < 0.9


def test_bounce_logs_decode_cleanly_on_both_nodes(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    for node in (node1, node4):
        entries = node.entries()
        assert entries
        times = [e.time_us for e in entries]
        assert times == sorted(times)


def test_energy_conservation_per_node(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    for node in (node1, node4):
        emap = node.energy_map()
        truth = node.platform.rail.energy()
        # Reconstructed totals track the hidden truth within quantization
        # and regression error on this busier workload.
        assert emap.reconstructed_energy_j == pytest.approx(truth, rel=0.05)
