"""The iCount meter model."""

import pytest

from repro.hw.power import PowerRail
from repro.meter.icount import DEFAULT_ENERGY_PER_PULSE_J, ICountMeter
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.units import ma, ms, seconds


def _rail_with_load(amps=ma(10), voltage=3.0):
    sim = Simulator()
    rail = PowerRail(sim, voltage=voltage)
    sink = rail.register("load")
    sink.set_current(amps)
    return sim, rail


def test_pulse_count_quantizes_energy():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail)
    sim.at(seconds(1), lambda: None)
    sim.run()
    # 30 mW * 1 s = 30 mJ -> 30e-3 / 8.33e-6 = 3601.4 -> 3601 pulses
    assert meter.read() == int(0.030 / DEFAULT_ENERGY_PER_PULSE_J)


def test_counter_is_monotone():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail)
    last = 0
    for k in range(1, 20):
        sim.at(ms(k * 10), lambda: None)
        sim.run(until=ms(k * 10))
        value = meter.read()
        assert value >= last
        last = value


def test_extrapolated_read_uses_current_power():
    sim, rail = _rail_with_load(amps=ma(100))  # 300 mW
    meter = ICountMeter(rail)
    sim.at(seconds(1), lambda: None)
    sim.run()
    now_pulses = meter.read()
    ahead = meter.read(at_ns=sim.now + ms(100))
    # 300 mW * 0.1 s = 30 mJ ~= 3601 more pulses
    assert ahead - now_pulses == pytest.approx(3601, abs=2)


def test_extrapolation_ignores_past_times():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail)
    sim.at(seconds(1), lambda: None)
    sim.run()
    assert meter.read(at_ns=sim.now - ms(100)) == meter.read()


def test_gain_error_scales_the_count():
    sim, rail = _rail_with_load()
    clean = ICountMeter(rail)
    low = ICountMeter(rail, gain_error=0.15)
    sim.at(seconds(10), lambda: None)
    sim.run()
    ratio = low.read() / clean.read()
    assert ratio == pytest.approx(1 / 1.15, rel=1e-3)


def test_jitter_never_goes_backwards():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail, jitter_pulses=3.0,
                        rng=RngFactory(0).stream("icount"))
    last = 0
    for k in range(1, 200):
        sim.at(ms(k), lambda: None)
        sim.run(until=ms(k))
        value = meter.read()
        assert value >= last
        last = value


def test_pulses_to_joules_uses_nominal_constant():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail, gain_error=0.15)
    assert meter.pulses_to_joules(1000) == pytest.approx(
        1000 * DEFAULT_ENERGY_PER_PULSE_J)


def test_frequency_matches_paper_fit():
    sim, rail = _rail_with_load()
    meter = ICountMeter(rail)
    # I = 2.77 f - 0.05 -> at 2.77 mA, f = ~1.018 kHz
    freq = meter.frequency_for_current(ma(2.77))
    assert freq == pytest.approx((2.77 + 0.05) / 2.77 * 1e3, rel=1e-6)
    assert meter.frequency_for_current(0.0) >= 0.0


def test_invalid_quantum_rejected():
    sim, rail = _rail_with_load()
    with pytest.raises(ValueError):
        ICountMeter(rail, energy_per_pulse_j=0.0)
