"""The columnar analysis backend: decode, cover, and attribution.

Three layers of equivalence pin the backend down:

* **Decode** — ``decode_columns`` (one ``np.frombuffer`` shot) must
  agree field-for-field with the generator decoder, including 32-bit
  time/iCount wrap-around, and ``QuantoLogger.columns()`` must produce
  the same columns whether the packed-bytes cache is cold or warm.
* **Cover** — on randomized logs, the ``searchsorted`` interval cover
  must match the cursor-based streaming cover span-for-span (same
  segments, same overlaps, same order), and the columnar interval /
  segment reconstruction must equal the batch builder's objects.
* **Attribution** — the full columnar energy map must be bit-identical
  (float bits and dict insertion order) to the streaming accumulator on
  randomized logs with randomized analysis windows — including windows
  the log overshoots (the tail-replay path) — in both proxy-fold modes.

The experiment-level contract (columnar ≡ streaming on every
experiment) lives in the backend-parametrized ``test_golden_digests``.
"""

import random

import numpy as np
import pytest

from repro.core.accounting import (
    _ragged_cover,
    _scan_cover,
    ANALYSIS_BACKENDS,
    AnalysisBackendError,
    columnar_energy_map,
    resolve_analysis_backend,
    stream_energy_map,
)
from repro.core.labels import ActivityRegistry
from repro.core.logger import (
    ENTRY_STRUCT,
    LogColumns,
    decode_columns,
    decode_log,
    iter_entries,
)
from repro.core.regression import (
    RegressionResult,
    SinkColumn,
    group_intervals,
    solve_grouped,
)
from repro.core.timeline import ColumnarTimeline, TimelineBuilder
from repro.errors import RegressionError

# Entry types, inlined for terse generator code.
POWER, CHANGE, BIND, ADD, REMOVE, BOOT = 1, 2, 3, 4, 5, 6

SINGLE_IDS = (0, 1)
POWER_ONLY_ID = 2  # has power states but no activity instrumentation
MULTI_ID = 9
LABELS = (0x0101, 0x0102, 0x0103, 0x01C8)  # third one binds onto others


def _random_log(rng, n_entries=300, time_base_us=0):
    """A synthetic but semantically valid log: monotone times, monotone
    iCount, boots first, then a random mix of power toggles, activity
    changes/binds, and multi add/removes — with same-time bursts and
    immediate re-paints so zero-length segments and merged interval
    boundaries occur."""
    rows = []
    t = time_base_us
    ic = rng.randrange(1000)
    for rid in (*SINGLE_IDS, POWER_ONLY_ID):
        rows.append((BOOT, rid, t, ic, 0))
    for _ in range(n_entries):
        if rng.random() < 0.7:  # bursts: several entries at one time
            t += rng.randrange(1, 4000)
        ic += rng.randrange(0, 50)
        kind = rng.random()
        if kind < 0.45:
            rows.append((POWER, rng.choice((*SINGLE_IDS, POWER_ONLY_ID)),
                         t, ic, rng.randrange(2)))
        elif kind < 0.75:
            rows.append((CHANGE, rng.choice(SINGLE_IDS), t, ic,
                         rng.choice(LABELS)))
        elif kind < 0.85:
            rows.append((BIND, rng.choice(SINGLE_IDS), t, ic,
                         rng.choice(LABELS)))
        elif kind < 0.95:
            rows.append((ADD, MULTI_ID, t, ic, rng.choice(LABELS)))
        else:
            rows.append((REMOVE, MULTI_ID, t, ic, rng.choice(LABELS)))
    raw = b"".join(
        ENTRY_STRUCT.pack(entry_type, rid, time_us & 0xFFFFFFFF,
                          pulses & 0xFFFFFFFF, value)
        for entry_type, rid, time_us, pulses, value in rows
    )
    return raw, t


def _regression_for_test():
    columns = [
        SinkColumn(res_id=rid, value=1, name=f"sink{rid}")
        for rid in (*SINGLE_IDS, POWER_ONLY_ID)
    ]
    return RegressionResult(
        columns=columns,
        power_w={c.name: 0.003 * (c.res_id + 1) for c in columns},
        const_power_w=0.0011,
        voltage=3.0,
        y=np.zeros(1), y_hat=np.zeros(1), weights=np.ones(1),
        group_states=[], group_time_ns=[], group_energy_j=[],
    )


def _maps_equal(reference, candidate):
    assert list(reference.energy_j) == list(candidate.energy_j)
    assert reference.energy_j == candidate.energy_j
    assert list(reference.time_ns) == list(candidate.time_ns)
    assert reference.time_ns == candidate.time_ns
    assert reference.metered_energy_j == candidate.metered_energy_j
    assert reference.reconstructed_energy_j \
        == candidate.reconstructed_energy_j
    assert reference.span_ns == candidate.span_ns


# -- decode -----------------------------------------------------------------


@pytest.mark.parametrize("time_base_us", [0, (1 << 32) - 2_000])
def test_decode_columns_matches_iter_entries(time_base_us):
    """Field-for-field decode equivalence, including u32 wrap-around
    (the second base starts just below the 32-bit boundary, so times
    and iCounts wrap mid-log)."""
    rng = random.Random(7)
    raw, _end = _random_log(rng, time_base_us=time_base_us)
    entries = decode_log(raw)
    columns = decode_columns(raw)
    assert len(columns) == len(entries)
    assert columns.type.tolist() == [e.type for e in entries]
    assert columns.res_id.tolist() == [e.res_id for e in entries]
    assert columns.time_ns.tolist() == [e.time_ns for e in entries]
    assert columns.icount.tolist() == [e.icount for e in entries]
    assert columns.value.tolist() == [e.value for e in entries]


def test_logger_columns_cold_and_warm():
    """``QuantoLogger.columns()`` must agree with decoding the packed
    bytes, both before the pack cache exists (raw-tuple ring path) and
    after (frombuffer path)."""
    from repro.experiments.common import run_blink
    from repro.units import seconds

    node, _app, _sim = run_blink(seed=0, duration_ns=seconds(2))
    cold = node.logger.columns()  # no raw_bytes() call yet: ring path
    raw = node.logger.raw_bytes()
    warm = node.logger.columns()  # packed cache now warm
    reference = decode_columns(raw)
    for candidate in (cold, warm):
        assert candidate.time_ns.tolist() == reference.time_ns.tolist()
        assert candidate.icount.tolist() == reference.icount.tolist()
        assert candidate.type.tolist() == reference.type.tolist()
        assert candidate.res_id.tolist() == reference.res_id.tolist()
        assert candidate.value.tolist() == reference.value.tolist()


def test_log_columns_from_entries_roundtrip():
    rng = random.Random(3)
    raw, _end = _random_log(rng, n_entries=50)
    entries = decode_log(raw)
    columns = LogColumns.from_entries(entries)
    reference = decode_columns(raw)
    assert columns.time_ns.tolist() == reference.time_ns.tolist()
    assert columns.icount.tolist() == reference.icount.tolist()


# -- reconstruction ---------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_columnar_reconstruction_matches_builder(seed):
    """Intervals (times, pulses, state vectors) and per-device segments
    (spans, labels, bind resolution) equal the batch builder's."""
    rng = random.Random(seed)
    raw, end_us = _random_log(rng)
    entries = decode_log(raw)
    builder = TimelineBuilder(
        entries, end_time_ns=end_us * 1000,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID])
    columnar = ColumnarTimeline(
        decode_columns(raw), end_time_ns=end_us * 1000,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID])
    assert columnar.power_intervals() == builder.power_intervals()
    for rid in SINGLE_IDS:
        assert columnar.activity_segments(rid) \
            == builder.activity_segments(rid)


@pytest.mark.parametrize("seed", range(6))
def test_ragged_cover_matches_cursor_cover(seed):
    """The searchsorted cover must yield the cursor-based cover's spans
    exactly: same segments, same overlaps, same order, per interval."""
    rng = random.Random(100 + seed)
    raw, end_us = _random_log(rng)
    entries = decode_log(raw)
    builder = TimelineBuilder(
        entries, end_time_ns=end_us * 1000,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID])
    columnar = ColumnarTimeline(
        decode_columns(raw), end_time_ns=end_us * 1000,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID])
    intervals = builder.power_intervals()
    window_t0 = np.array([iv.t0_ns for iv in intervals], dtype=np.int64)
    window_t1 = np.array([iv.t1_ns for iv in intervals], dtype=np.int64)
    for rid in SINGLE_IDS:
        segments = builder.activity_segments(rid)
        device = columnar.single_columns(rid)
        offsets, seg_rows, overlaps = _ragged_cover(
            window_t0, window_t1, device.t0, device.t1)
        cursor = 0
        for index, interval in enumerate(intervals):
            expected, _covered, cursor = _scan_cover(
                segments, cursor, interval.t0_ns, interval.t1_ns)
            got = [
                (int(device.t0[j]), int(device.t1[j]), int(overlaps[k]))
                for k, j in enumerate(
                    seg_rows[offsets[index]:offsets[index + 1]].tolist(),
                    start=int(offsets[index]))
            ]
            assert got == [
                (segment.t0_ns, segment.t1_ns, overlap)
                for segment, overlap in expected
            ], f"res {rid}, interval {index}"


# -- attribution ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("fold", [False, True])
def test_randomized_maps_bit_identical(seed, fold):
    """Streaming and columnar maps are bit-identical on random logs with
    random analysis windows — including windows shorter than the log
    (records overshoot: the accumulator's tail-replay path) and longer
    (trailing idle)."""
    rng = random.Random(1000 + seed)
    raw, end_us = _random_log(rng)
    regression = _regression_for_test()
    registry = ActivityRegistry()
    names = {0: "CPU", 1: "Radio", 2: "Flash", 9: "TimerB"}
    # Window: before, at, or past the last record.
    end_time_ns = rng.choice((
        end_us * 1000, (end_us - 500) * 1000, (end_us + 5_000) * 1000))
    kwargs = dict(
        fold_proxies=fold, idle_name="Idle", end_time_ns=end_time_ns,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID],
    )
    reference = stream_energy_map(
        iter_entries(raw), regression, registry, names, 1e-6, **kwargs)
    candidate = columnar_energy_map(
        raw, regression, registry, names, 1e-6, **kwargs)
    _maps_equal(reference, candidate)


def test_grouped_inputs_match_group_intervals():
    rng = random.Random(42)
    raw, end_us = _random_log(rng)
    columnar = ColumnarTimeline(
        decode_columns(raw), end_time_ns=end_us * 1000,
        single_res_ids=SINGLE_IDS, multi_res_ids=[MULTI_ID])
    reference = group_intervals(columnar.power_intervals(), 1e-6)
    assert columnar.grouped_inputs(1e-6) == reference
    # The min-interval filter applies before grouping, like
    # solve_breakdown's usable filter.
    long_only = [iv for iv in columnar.power_intervals()
                 if iv.dt_ns >= 1_000_000]
    assert columnar.grouped_inputs(1e-6, min_interval_ns=1_000_000) \
        == group_intervals(long_only, 1e-6)
    with pytest.raises(RegressionError):
        columnar.grouped_inputs(1e-6, min_interval_ns=10**15)


def test_node_backend_api_is_bit_identical():
    """The node-level entry points (regression + energy map) agree
    across backends, and the columnar regression is the same solved
    object contents as the interval-fed one."""
    from repro.experiments.common import run_blink
    from repro.units import seconds

    node, _app, _sim = run_blink(seed=5, duration_ns=seconds(4))
    reference_map = node.energy_map(backend="streaming")
    columnar_map = node.energy_map(backend="columnar")
    _maps_equal(reference_map, columnar_map)
    reference = node.regression(backend="streaming")
    candidate = node.regression(backend="columnar")
    assert reference.power_w == candidate.power_w
    assert reference.const_power_w == candidate.const_power_w
    assert reference.group_states == candidate.group_states
    assert reference.group_time_ns == candidate.group_time_ns
    assert reference.group_energy_j == candidate.group_energy_j
    assert (reference.y == candidate.y).all()
    assert (reference.y_hat == candidate.y_hat).all()
    # Fold mode through the node API too.
    _maps_equal(node.energy_map(fold_proxies=True, backend="streaming"),
                node.energy_map(fold_proxies=True, backend="columnar"))


def test_solve_grouped_equals_solve_breakdown():
    from repro.experiments.common import run_blink
    from repro.units import seconds

    node, _app, _sim = run_blink(seed=2, duration_ns=seconds(4))
    timeline = node.timeline()
    reference = node.regression(timeline)
    vectors, times_ns, energies = group_intervals(
        timeline.power_intervals(),
        node.platform.icount.nominal_energy_per_pulse_j)
    candidate = solve_grouped(
        vectors, times_ns, energies, node.layout(),
        node.platform.rail.voltage)
    assert reference.power_w == candidate.power_w
    assert reference.const_power_w == candidate.const_power_w


def test_device_turning_multi_mid_log_matches_streaming():
    """A device with change/bind records *and* later add/remove records:
    the streaming feed drops change entries once the res_id is known
    multi, and the columnar backend must reproduce that — including the
    segment split and the add_time breakdown."""
    rid = 5
    rows = [
        (BOOT, rid, 50, 0, 0),
        (POWER, rid, 80, 1, 1),
        (CHANGE, rid, 100, 2, 0x0111),
        (ADD, rid, 200, 3, 0x0122),
        (CHANGE, rid, 300, 5, 0x0133),  # dropped by the stream: multi now
        (POWER, rid, 400, 9, 0),
    ]
    raw = b"".join(ENTRY_STRUCT.pack(*row) for row in rows)
    regression = RegressionResult(
        columns=[SinkColumn(res_id=rid, value=1, name="dev")],
        power_w={"dev": 0.004}, const_power_w=0.001, voltage=3.0,
        y=np.zeros(1), y_hat=np.zeros(1), weights=np.ones(1),
        group_states=[], group_time_ns=[], group_energy_j=[],
    )
    registry = ActivityRegistry()
    for fold in (False, True):
        kwargs = dict(fold_proxies=fold, idle_name="Idle",
                      end_time_ns=400_000)
        reference = stream_energy_map(
            iter_entries(raw), regression, registry, {rid: "Dev"}, 1e-6,
            **kwargs)
        candidate = columnar_energy_map(
            raw, regression, registry, {rid: "Dev"}, 1e-6, **kwargs)
        _maps_equal(reference, candidate)
    # Declared both single and multi: the stream keeps an (unfed) single
    # tracker, so covers resolve as single-with-no-segments — all idle.
    kwargs = dict(fold_proxies=False, idle_name="Idle", end_time_ns=400_000,
                  single_res_ids=[rid], multi_res_ids=[rid])
    reference = stream_energy_map(
        iter_entries(raw), regression, registry, {rid: "Dev"}, 1e-6,
        **kwargs)
    candidate = columnar_energy_map(
        raw, regression, registry, {rid: "Dev"}, 1e-6, **kwargs)
    _maps_equal(reference, candidate)


def test_stale_timeline_snapshot_matches_streaming():
    """A timeline captured before the log grows must analyze its
    captured entries on both backends — not the live log."""
    from repro.experiments.common import run_blink
    from repro.units import seconds

    node, _app, sim = run_blink(seed=4, duration_ns=seconds(2))
    stale = node.timeline()
    sim.run(until=sim.now + seconds(2))  # the log keeps growing
    reference = node.energy_map(stale, backend="streaming")
    candidate = node.energy_map(stale, backend="columnar")
    _maps_equal(reference, candidate)
    ref_reg = node.regression(stale, backend="streaming")
    cand_reg = node.regression(stale, backend="columnar")
    assert ref_reg.power_w == cand_reg.power_w
    assert ref_reg.group_time_ns == cand_reg.group_time_ns
    assert ref_reg.group_energy_j == cand_reg.group_energy_j


# -- selection --------------------------------------------------------------


def test_backend_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_ANALYSIS_BACKEND", raising=False)
    # Columnar is the default since the sweep-throughput overhaul (PR 5);
    # bit-identity makes the default invisible to every result.
    assert resolve_analysis_backend() == "columnar"
    assert resolve_analysis_backend("columnar") == "columnar"
    monkeypatch.setenv("REPRO_ANALYSIS_BACKEND", "columnar")
    assert resolve_analysis_backend() == "columnar"
    assert resolve_analysis_backend("streaming") == "streaming"
    with pytest.raises(AnalysisBackendError):
        resolve_analysis_backend("vectorized")
    monkeypatch.setenv("REPRO_ANALYSIS_BACKEND", "bogus")
    with pytest.raises(AnalysisBackendError):
        resolve_analysis_backend()
    assert set(ANALYSIS_BACKENDS) == {"streaming", "columnar"}


def test_sweep_backend_digests_match(tmp_path):
    """A sweep run under the columnar backend reports byte-identical
    per-point digests (the backend cannot leak into results), and the
    environment variable is restored afterwards."""
    import os

    from repro.sim.sweep import run_sweep

    overrides = {"duration_ns": ["2000000000"]}
    ambient = os.environ.get("REPRO_ANALYSIS_BACKEND")
    reference = run_sweep("table3", [0, 1], overrides)
    candidate = run_sweep("table3", [0, 1], overrides, backend="columnar")
    # The explicit backend is exported only for the sweep's duration;
    # whatever was set before (e.g. a CI matrix leg) is restored.
    assert os.environ.get("REPRO_ANALYSIS_BACKEND") == ambient
    assert reference.digest() == candidate.digest()
    assert candidate.backend == "columnar"
    assert "analysis backend: columnar" in candidate.render()


def test_columnar_errors_match_streaming():
    registry = ActivityRegistry()
    with pytest.raises(RegressionError, match="no power intervals"):
        columnar_energy_map(b"", _regression_for_test(), registry, {}, 1e-6)
    raw, _end = _random_log(random.Random(0), n_entries=20)
    with pytest.raises(RegressionError, match="needs a regression"):
        columnar_energy_map(raw, None, registry, {}, 1e-6)


# -- logdump iterables ------------------------------------------------------


def test_dump_log_accepts_generator():
    """dump_log consumes generators (no materialized entry list) and
    renders the same text as the list path, counting past the limit."""
    from repro.toolkit.logdump import dump_log, export_log_csv

    raw, _end = _random_log(random.Random(9), n_entries=40)
    entries = decode_log(raw)
    assert dump_log(iter_entries(raw)) == dump_log(entries)
    assert dump_log(iter_entries(raw), limit=10) \
        == dump_log(entries, limit=10)
    assert dump_log(iter_entries(raw), limit=10).endswith("more entries")
    assert export_log_csv(iter_entries(raw)) == export_log_csv(entries)
