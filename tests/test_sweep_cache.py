"""The digest-keyed sweep cache and the streaming aggregation path."""

import pytest

from repro.cli import main
from repro.errors import SweepError
from repro.sim import sweep as sweep_mod
from repro.sim.sweep import (
    SweepCache,
    SweepPoint,
    code_fingerprint,
    expand_grid,
    run_sweep,
)
from repro.units import seconds

SHORT = str(seconds(8))
OVERRIDES = {"duration_ns": [SHORT], "device_variation": ["0.02"]}


def test_second_identical_sweep_reuses_every_point(tmp_path):
    first = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                      cache_dir=tmp_path)
    assert (first.cache_hits, first.simulated) == (0, 2)
    second = run_sweep("table3", range(2), OVERRIDES, jobs=2,
                       cache_dir=tmp_path)
    assert (second.cache_hits, second.simulated) == (2, 0)
    # Aggregates folded from cache are byte-identical to fresh ones.
    assert second.digest() == first.digest()
    assert second.metrics == first.metrics
    assert second.comparisons == first.comparisons
    assert all(point.from_cache for point in second.points)


def test_grid_extension_simulates_only_new_points(tmp_path):
    run_sweep("table3", range(2), OVERRIDES, jobs=1, cache_dir=tmp_path)
    extended = run_sweep("table3", range(4), OVERRIDES, jobs=1,
                         cache_dir=tmp_path)
    assert (extended.cache_hits, extended.simulated) == (2, 2)
    flags = [point.from_cache for point in extended.points]
    assert flags == [True, True, False, False]


def test_cached_and_uncached_aggregates_agree(tmp_path):
    cached = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                       cache_dir=tmp_path)
    rerun = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                      cache_dir=tmp_path)
    plain = run_sweep("table3", range(2), OVERRIDES, jobs=1)
    assert plain.digest() == cached.digest() == rerun.digest()
    assert plain.metrics == cached.metrics == rerun.metrics


def test_corrupt_cache_entry_misses_and_reruns(tmp_path):
    """A torn shard tail (the crash-mid-append case) drops exactly the
    incomplete record: the point misses, is re-simulated, and the rerun
    appends a fresh record that future runs hit."""
    run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    (shard,) = list(tmp_path.rglob("*.shard"))
    blob = shard.read_bytes()
    shard.write_bytes(blob[:-10])  # tear the record mid-payload
    (index,) = list(tmp_path.rglob("*.idx"))
    index.unlink()  # stale accelerator: force the recovery scan
    result = run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    assert (result.cache_hits, result.simulated) == (0, 1)
    # The rerun appended a complete record (last write wins).
    rerun = run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    assert (rerun.cache_hits, rerun.simulated) == (1, 0)
    assert rerun.points[0].digest == result.points[0].digest


def test_garbled_shard_magic_is_a_full_miss(tmp_path):
    run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    (shard,) = list(tmp_path.rglob("*.shard"))
    shard.write_bytes(b"not a shard store" + shard.read_bytes())
    (index,) = list(tmp_path.rglob("*.idx"))
    index.unlink()
    result = run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    assert (result.cache_hits, result.simulated) == (0, 1)


def test_missing_index_is_rebuilt_from_the_shard(tmp_path):
    """The .idx file is purely derived: deleting it costs one recovery
    scan, never a cache miss."""
    run_sweep("table3", range(2), OVERRIDES, jobs=1, cache_dir=tmp_path)
    (index,) = list(tmp_path.rglob("*.idx"))
    index.unlink()
    result = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                       cache_dir=tmp_path)
    assert (result.cache_hits, result.simulated) == (2, 0)
    assert index.is_file()  # rewritten by the recovery scan


def test_stale_index_after_external_append_scans_the_tail(tmp_path):
    """An index that covers only a prefix of the shard (writer crashed
    between the payload and index appends) is topped up by scanning the
    tail, not discarded."""
    run_sweep("table3", range(2), OVERRIDES, jobs=1, cache_dir=tmp_path)
    (index,) = list(tmp_path.rglob("*.idx"))
    from repro.sim.shardstore import INDEX_MAGIC, INDEX_ROW

    blob = index.read_bytes()
    index.write_bytes(blob[: len(INDEX_MAGIC) + INDEX_ROW.size])
    result = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                       cache_dir=tmp_path)
    assert (result.cache_hits, result.simulated) == (2, 0)


def test_point_key_binds_to_source_fingerprint(monkeypatch):
    cache = SweepCache("unused")
    point = SweepPoint("table3", 7, (("duration_ns", SHORT),))
    monkeypatch.setattr(sweep_mod, "_code_fingerprint_cache", "aaa")
    key_a = cache.point_key(point)
    monkeypatch.setattr(sweep_mod, "_code_fingerprint_cache", "bbb")
    key_b = cache.point_key(point)
    assert key_a != key_b
    # Stable within one source tree, sensitive to every grid coordinate.
    monkeypatch.setattr(sweep_mod, "_code_fingerprint_cache", "aaa")
    assert cache.point_key(point) == key_a
    assert cache.point_key(SweepPoint("table3", 8, point.overrides)) != key_a


def test_code_fingerprint_is_cached_and_hexdigest():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 64
    int(first, 16)  # hex


def test_jobs_zero_autodetects_workers(tmp_path):
    result = run_sweep("table3", range(2), OVERRIDES, jobs=0)
    assert result.jobs >= 1
    assert len(result.points) == 2


def test_render_reports_cache_provenance(tmp_path):
    run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=tmp_path)
    text = run_sweep("table3", range(2), OVERRIDES, jobs=1,
                     cache_dir=tmp_path).render()
    assert "-- cache: 1 reused, 1 simulated" in text
    assert "cache" in text and "run" in text  # per-point source column
    plain = run_sweep("table3", [0], OVERRIDES, jobs=1).render()
    assert "-- cache:" not in plain


# -- CLI ------------------------------------------------------------------


def test_cli_sweep_cache_dir_flag(tmp_path, capsys):
    args = ["sweep", "table3", "--seeds", "1",
            "--set", f"duration_ns={SHORT}",
            "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "-- cache: 1 reused, 0 simulated" in out


def test_cli_sweep_cache_env_and_no_cache(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
    args = ["sweep", "table3", "--seeds", "1",
            "--set", f"duration_ns={SHORT}"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert f"-- cache: 0 reused, 1 simulated ({tmp_path})" in out
    assert main([*args, "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "-- cache:" not in out


def test_cli_sweep_jobs_zero(capsys):
    code = main(["sweep", "table3", "--seeds", "1", "--jobs", "0",
                 "--set", f"duration_ns={SHORT}"])
    assert code == 0
    assert "== sweep: table3" in capsys.readouterr().out


def test_cli_sweep_negative_jobs_rejected(capsys):
    assert main(["sweep", "table3", "--seeds", "1", "--jobs", "-2"]) == 2


# -- choice-validated parameters -------------------------------------------


def test_topology_choices_validated_before_fork():
    from repro.errors import ExperimentParameterError

    with pytest.raises(ExperimentParameterError) as excinfo:
        expand_grid("ext_collection", [0], {"topology": ["ring"]})
    message = str(excinfo.value)
    assert "line" in message and "star" in message


def test_topology_choice_accepted():
    points = expand_grid("ext_collection", [0],
                         {"topology": ["line", "star"], "nodes": ["2"]})
    assert len(points) == 2


def test_node_count_minimum_validated_before_fork():
    from repro.errors import ExperimentParameterError

    for exp_id in ("fig12", "ext_collection"):
        with pytest.raises(ExperimentParameterError) as excinfo:
            expand_grid(exp_id, [0], {"nodes": ["1", "2"]})
        assert "at least 2" in str(excinfo.value)


def test_unwritable_cache_dir_does_not_kill_the_sweep(tmp_path):
    """A cache root that is a plain file can neither load nor store —
    the campaign must still complete, just without reuse."""
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("occupied")
    result = run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=bogus)
    assert (result.cache_hits, result.simulated) == (0, 1)
    rerun = run_sweep("table3", [0], OVERRIDES, jobs=1, cache_dir=bogus)
    assert (rerun.cache_hits, rerun.simulated) == (0, 1)
    assert rerun.digest() == result.digest()
