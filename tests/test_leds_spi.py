"""LED bank and SPI bus hardware models."""

import pytest

from repro.errors import HardwareError
from repro.hw.catalog import default_actual_profile
from repro.hw.leds import LedBank
from repro.hw.power import PowerRail
from repro.hw.spi import BYTE_TIME_NS, DMA_SETUP_NS, SpiBus
from repro.sim.engine import Simulator
from repro.units import ma, us


def _bank():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    bank = LedBank(rail, default_actual_profile())
    return sim, rail, bank


def test_led_draws_actual_current_when_on():
    sim, rail, bank = _bank()
    bank.led(0).on()
    assert rail.current() == pytest.approx(ma(2.50))
    bank.led(0).off()
    assert rail.current() == 0.0


def test_led_toggle_counts():
    sim, rail, bank = _bank()
    led = bank.led(1)
    led.toggle()
    led.toggle()
    led.on()  # already off->on
    assert led.toggle_count == 3


def test_led_on_is_idempotent():
    sim, rail, bank = _bank()
    led = bank.led(2)
    events = []
    led.set_listener(events.append)
    led.on()
    led.on()
    assert events == [True]


def test_all_off():
    sim, rail, bank = _bank()
    for led in bank.leds:
        led.on()
    bank.all_off()
    assert rail.current() == 0.0


def test_led_index_bounds():
    sim, rail, bank = _bank()
    with pytest.raises(HardwareError):
        bank.led(3)


# -- SPI ----------------------------------------------------------------


def test_pair_shift_timing():
    sim = Simulator()
    spi = SpiBus(sim)
    done = []
    spi.shift_pair(10, lambda: done.append(sim.now))
    sim.run()
    assert done == [2 * BYTE_TIME_NS]
    assert spi.busy  # held until end_transfer
    spi.end_transfer()
    assert not spi.busy


def test_single_byte_pair():
    sim = Simulator()
    spi = SpiBus(sim)
    done = []
    spi.shift_pair(1, lambda: done.append(sim.now))
    sim.run()
    assert done == [BYTE_TIME_NS]


def test_dma_transfer_timing_and_release():
    sim = Simulator()
    spi = SpiBus(sim)
    done = []
    spi.dma_transfer(40, lambda: done.append(sim.now))
    assert spi.busy
    sim.run()
    assert done == [DMA_SETUP_NS + 40 * BYTE_TIME_NS]
    assert not spi.busy
    assert spi.dma_transfers == 1


def test_bus_contention_rejected():
    sim = Simulator()
    spi = SpiBus(sim)
    spi.dma_transfer(10, lambda: None)
    with pytest.raises(HardwareError):
        spi.dma_transfer(10, lambda: None)


def test_zero_length_transfers_rejected():
    sim = Simulator()
    spi = SpiBus(sim)
    with pytest.raises(HardwareError):
        spi.shift_pair(0, lambda: None)
    with pytest.raises(HardwareError):
        spi.dma_transfer(0, lambda: None)


def test_analytic_transfer_time():
    sim = Simulator()
    spi = SpiBus(sim)
    irq = spi.transfer_time_ns(40, "irq", handler_latency_ns=us(200))
    dma = spi.transfer_time_ns(40, "dma")
    assert irq == 40 * BYTE_TIME_NS + 20 * us(200)
    assert dma == DMA_SETUP_NS + 40 * BYTE_TIME_NS
    assert irq > 2 * dma  # the Figure 16 relation
    with pytest.raises(HardwareError):
        spi.transfer_time_ns(40, "warp")
