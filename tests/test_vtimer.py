"""Virtual timers: multiplexing, activity save/restore, the multi-activity
hardware timer device."""

import pytest

from repro.errors import SimulationError
from repro.units import ms, seconds


def test_periodic_timer_fires_on_schedule(node, sim):
    fires = []
    node.boot(lambda n: n.vtimers.start_periodic(
        lambda: fires.append(sim.now), ms(100), name="p"))
    sim.run(until=ms(1000))
    assert len(fires) == 9 or len(fires) == 10
    # Firing cadence is the period plus small dispatch latency.
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    assert all(abs(gap - ms(100)) < ms(5) for gap in gaps)


def test_oneshot_fires_once(node, sim):
    fires = []
    node.boot(lambda n: n.vtimers.start_oneshot(
        lambda: fires.append(sim.now), ms(50), name="o"))
    sim.run(until=ms(500))
    assert len(fires) == 1
    assert node.vtimers.active_timers() == 0


def test_stop_cancels(node, sim):
    fires = []

    def app(n):
        timer = n.vtimers.start_periodic(
            lambda: fires.append(sim.now), ms(100), name="p")
        n.vtimers.start_oneshot(
            lambda: n.vtimers.stop(timer), ms(250), name="stopper")

    node.boot(app)
    sim.run(until=seconds(1))
    assert len(fires) == 2  # fired at ~100 and ~200 ms, then stopped


def test_multiple_timers_multiplex_one_compare(node, sim):
    a_fires, b_fires = [], []

    def app(n):
        n.vtimers.start_periodic(lambda: a_fires.append(sim.now), ms(100),
                                 name="a")
        n.vtimers.start_periodic(lambda: b_fires.append(sim.now), ms(250),
                                 name="b")

    node.boot(app)
    sim.run(until=seconds(1))
    assert len(a_fires) >= 8
    assert len(b_fires) >= 3
    # Only one hardware compare unit was used.
    assert node.platform.timer_b.unit(0).fire_count > 0
    assert node.platform.timer_b.unit(2).fire_count == 0


def test_timer_restores_saved_activity(node, sim):
    red = node.activity("Red")
    seen = []

    def app(n):
        n.cpu_activity.set(red)
        n.vtimers.start_oneshot(
            lambda: seen.append(n.cpu_activity.get()), ms(50), name="t")
        n.cpu_activity.set(n.idle)

    node.boot(app)
    sim.run(until=ms(200))
    assert seen == [red]


def test_explicit_activity_override(node, sim):
    blue = node.activity("Blue")
    seen = []
    node.boot(lambda n: n.vtimers.start_oneshot(
        lambda: seen.append(n.cpu_activity.get()), ms(50), name="t",
        activity=blue))
    sim.run(until=ms(200))
    assert seen == [blue]


def test_hw_timer_is_multi_activity_device(node, sim):
    red = node.activity("Red")
    blue = node.activity("Blue")

    def app(n):
        n.cpu_activity.set(red)
        n.vtimers.start_periodic(lambda: None, ms(100), name="a")
        n.cpu_activity.set(blue)
        n.vtimers.start_periodic(lambda: None, ms(200), name="b")

    node.boot(app)
    sim.run(until=ms(50))
    assert node.timer_activity.activities() == {red, blue}


def test_oneshot_removed_from_multi_device_after_fire(node, sim):
    red = node.activity("Red")

    def app(n):
        n.cpu_activity.set(red)
        n.vtimers.start_oneshot(lambda: None, ms(50), name="t")

    node.boot(app)
    sim.run(until=ms(200))
    assert red not in node.timer_activity.activities()


def test_nonpositive_delay_rejected(node, sim):
    node.boot(lambda n: None)
    with pytest.raises(SimulationError):
        node.vtimers.start_oneshot(lambda: None, 0)


def test_vtimer_activity_charged_for_dispatch(node, sim):
    node.boot(lambda n: n.vtimers.start_periodic(
        lambda: None, ms(100), name="p"))
    sim.run(until=seconds(2))
    timeline = node.timeline()
    vtimer_name = node.registry.name_of(node.vtimer_label)
    segments = timeline.activity_segments(0)
    vtimer_time = sum(s.dt_ns for s in segments
                      if node.registry.name_of(s.label) == vtimer_name)
    assert vtimer_time > 0


def test_blink_schedules_o_wakeups_not_o_ticks(monkeypatch):
    """The timer subsystem multiplexes all virtual timers onto one
    compare arm per wakeup: a Blink run's engine event count must scale
    with *wakeups* (a few per LED toggle), never with the underlying
    timer granularity (1 MHz would mean millions of events).  Pins the
    scheduler batching contract for the calendar-queue engine."""
    from repro.experiments.common import run_blink
    from repro.units import seconds

    # Both worlds must stay live side by side: same-configuration calls
    # share one warm world (the second run_blink would reset the first
    # run's node/sim), so force cold constructions for this comparison.
    monkeypatch.setenv("REPRO_WARM_START", "0")
    node8, _, sim8 = run_blink(0, duration_ns=seconds(8))
    node48, _, sim48 = run_blink(0, duration_ns=seconds(48))
    # A 48 s Blink has ~48 timer wakeups; a handful of events each.
    assert sim48.events_executed < 10 * 48
    # Scaling is linear in wakeups (6x duration -> ~6x events), nowhere
    # near the 6 * 8e6 additional ticks a tick-driven scheduler would pay.
    growth = sim48.events_executed - sim8.events_executed
    assert growth < 10 * 40
    assert node48.vtimers.dispatches == 6 * node8.vtimers.dispatches
