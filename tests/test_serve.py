"""The live ingest server: streams in, breakdowns out.

The headline contract: a node's log streamed over a socket — in
adversarial chunk sizes — produces a final folded map **byte-identical**
to the offline ``build_energy_map`` of the same log.  Also covered:
concurrent node streams, live queries mid-stream, the query surface,
protocol error paths (bad hello, torn stream), and wire round-trips.
"""

import asyncio
import json

import pytest

from repro.core.accounting import build_energy_map
from repro.errors import ServeError
from repro.experiments.common import run_blink
from repro.serve import (
    IngestServer,
    final_map,
    hello_for_node,
    parse_address,
    query,
    stream_node,
    stream_raw,
)
from repro.serve.protocol import (
    emap_from_wire,
    emap_to_wire,
    pairs_from_wire,
    pairs_to_wire,
)
from repro.tos.node import COMPONENT_NAMES
from repro.units import seconds


def offline_map(node):
    timeline = node.timeline()
    regression = node.regression(timeline)
    return build_energy_map(
        timeline, regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        backend="streaming",
    )


def assert_maps_identical(served, offline):
    assert list(served.energy_j) == list(offline.energy_j)
    assert served.energy_j == offline.energy_j
    assert list(served.time_ns) == list(offline.time_ns)
    assert served.time_ns == offline.time_ns
    assert served.metered_energy_j == offline.metered_energy_j
    assert served.reconstructed_energy_j == offline.reconstructed_energy_j
    assert served.span_ns == offline.span_ns


@pytest.fixture()
def sock(tmp_path):
    return str(tmp_path / "ingest.sock")


def serve_and(sock_path, coroutine_fn, **server_kwargs):
    """Boot a unix-socket server, run the client coroutine, tear down."""
    async def main():
        server = IngestServer(**server_kwargs)
        await server.start_unix(sock_path)
        try:
            return await coroutine_fn(server)
        finally:
            await server.close()

    return asyncio.run(main())


# -- the identity contract ---------------------------------------------------


@pytest.mark.parametrize("chunk_size", [1, 7, 1021, 1 << 16])
def test_streamed_map_equals_offline(sock, chunk_size):
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    offline = offline_map(node)

    async def client(_server):
        return await stream_node(sock, node, stride_ns=int(seconds(1)),
                                 chunk_size=chunk_size)

    reply = serve_and(sock, client)
    assert reply["ok"] and reply["windows"] >= 1
    assert_maps_identical(final_map(reply), offline)


def test_two_nodes_stream_concurrently(sock):
    node_a, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    node_b, _app, _sim = run_blink(seed=7, duration_ns=seconds(8),
                                   node_id=2)
    offline = {1: offline_map(node_a), 2: offline_map(node_b)}

    async def client(server):
        replies = await asyncio.gather(
            stream_node(sock, node_a, stride_ns=int(seconds(1)),
                        chunk_size=13),
            stream_node(sock, node_b, stride_ns=int(seconds(2)),
                        chunk_size=31),
        )
        assert server.completed == 2
        return replies

    for reply in serve_and(sock, client):
        assert reply["ok"]
        assert_maps_identical(final_map(reply),
                              offline[reply["node_id"]])


def test_queries_mid_stream_and_after(sock):
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    offline = offline_map(node)
    live_states = []

    async def client(_server):
        async def on_chunk(sent, total):
            if sent < total:
                reply = await query(sock, {"cmd": "breakdown",
                                           "node_id": 1})
                live_states.append(reply["live"])

        reply = await stream_node(sock, node, stride_ns=int(seconds(1)),
                                  chunk_size=256, on_chunk=on_chunk)
        listing = await query(sock, {"cmd": "nodes"})
        windows = await query(sock, {"cmd": "windows", "node_id": 1,
                                     "last": 4})
        stats = await query(sock, {"cmd": "stats"})
        done = await query(sock, {"cmd": "breakdown", "node_id": 1})
        return reply, listing, windows, stats, done

    reply, listing, windows, stats, done = serve_and(sock, client)
    assert any(live_states)  # at least one query hit a stream in flight
    assert listing["nodes"][0]["state"] == "done"
    assert listing["nodes"][0]["entries"] == reply["entries"]
    assert windows["windows"][-1]["final"]
    assert windows["emitted"] == reply["windows"]
    assert stats["completed"] == 1
    assert done["live"] is False
    assert_maps_identical(emap_from_wire(done), offline)
    assert_maps_identical(final_map(reply), offline)


# -- protocol errors ---------------------------------------------------------


def test_bad_hello_is_rejected(sock):
    async def client(_server):
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b'INGEST {"node_id": 1}\n')
        await writer.drain()
        line = await reader.readline()
        writer.close()
        await writer.wait_closed()
        return json.loads(line)

    reply = serve_and(sock, client)
    assert reply["ok"] is False and "missing" in reply["error"]


def test_torn_stream_is_an_error_not_a_map(sock):
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    hello = hello_for_node(node, stride_ns=int(seconds(1)))
    raw = bytes(node.logger.raw_bytes())[:-5]  # rip the last entry

    async def client(server):
        with pytest.raises(ServeError, match="partial entry"):
            await stream_raw(sock, hello, raw)
        listing = await query(sock, {"cmd": "nodes"})
        return listing

    listing = serve_and(sock, client)
    assert listing["nodes"][0]["state"] == "error"
    assert "partial entry" in listing["nodes"][0]["error"]


def test_unknown_verb_and_query(sock):
    async def client(_server):
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b"FROBNICATE {}\n")
        await writer.drain()
        verb_reply = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        unknown_cmd = await query(sock, {"cmd": "nope"})
        unknown_node = await query(sock, {"cmd": "breakdown",
                                          "node_id": 99})
        return verb_reply, unknown_cmd, unknown_node

    verb_reply, unknown_cmd, unknown_node = serve_and(sock, client)
    assert verb_reply["ok"] is False and "verb" in verb_reply["error"]
    assert unknown_cmd["ok"] is False
    assert unknown_node["ok"] is False and "unknown node" in \
        unknown_node["error"]


def test_tcp_listener_works_too():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(4))
    offline = offline_map(node)

    async def main():
        server = IngestServer()
        host, port = await server.start_tcp("127.0.0.1", 0)
        try:
            return await stream_node((host, port), node,
                                     stride_ns=int(seconds(1)))
        finally:
            await server.close()

    reply = asyncio.run(main())
    assert_maps_identical(final_map(reply), offline)


# -- wire encoding -----------------------------------------------------------


def test_pairs_round_trip_preserves_order_and_bits():
    mapping = {("CPU", "1:Blink"): 0.1 + 0.2, ("Radio", "1:Idle"): 3e-17}
    triples = pairs_to_wire(mapping)
    assert pairs_from_wire(json.loads(json.dumps(triples))) == mapping
    assert list(pairs_from_wire(triples)) == list(mapping)


def test_emap_json_round_trip_is_exact():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(4))
    offline = offline_map(node)
    wire = json.loads(json.dumps(emap_to_wire(offline)))
    assert_maps_identical(emap_from_wire(wire), offline)


def test_parse_address_forms():
    assert parse_address("unix:/tmp/x.sock") == "/tmp/x.sock"
    assert parse_address("127.0.0.1:7117") == ("127.0.0.1", 7117)
    assert parse_address(":0") == ("127.0.0.1", 0)
    for bad in ("unix:", "nocolon", "host:port"):
        with pytest.raises(ServeError):
            parse_address(bad)


# -- graceful shutdown -------------------------------------------------------


def _stalled_stream_shutdown(sock, prefix_len):
    """Start a stream, stall it (no EOF) after ``prefix_len`` bytes,
    request shutdown mid-flight, and return (reply, server)."""
    from repro.serve.protocol import (
        INGEST_VERB,
        decode_json_line,
        encode_json_line,
    )

    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    raw = node.logger.raw_bytes()
    assert prefix_len < len(raw)
    hello = hello_for_node(node, stride_ns=int(seconds(1)))

    async def main():
        server = IngestServer()
        await server.start_unix(sock)

        async def client():
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(INGEST_VERB.encode() + b" "
                         + encode_json_line(hello))
            writer.write(raw[:prefix_len])
            await writer.drain()
            # Stall: no more bytes, no EOF — only a shutdown ends this.
            line = await reader.readline()
            writer.close()
            return decode_json_line(line, "reply") if line else None

        serve_task = asyncio.ensure_future(server.serve_forever())
        client_task = asyncio.ensure_future(client())
        await asyncio.sleep(0.1)  # let the prefix land
        server.request_shutdown()
        await serve_task  # returns only after handlers drained
        return await client_task, server

    return asyncio.run(main())


def test_shutdown_drains_and_finishes_clean_decoders(sock):
    """SIGINT/SIGTERM semantics: a node stalled at an entry boundary is
    drained, its decoder finished, and it gets its final folded map
    flagged as a shutdown delivery."""
    prefix = 1200  # 100 whole 12-byte entries
    reply, server = _stalled_stream_shutdown(sock, prefix)
    assert reply["ok"] and reply["shutdown"] is True
    assert reply["entries"] == 100
    assert server.sessions[1].state == "done"
    lines = server.final_stats_lines()
    assert any("node 1: done" in line for line in lines)
    assert any("1 completed streams" in line for line in lines)


def test_shutdown_mid_frame_fails_the_node_not_the_server(sock):
    """A node caught with a partial entry in its decoder cannot be
    folded truthfully: it is marked failed with a mid-frame error while
    the server still shuts down in order."""
    reply, server = _stalled_stream_shutdown(sock, 1207)  # 7 torn bytes
    assert reply["ok"] is False
    assert "mid-frame" in reply["error"]
    session = server.sessions[1]
    assert session.state == "error" and "mid-frame" in session.error
    assert any("error" in line for line in server.final_stats_lines())


def test_cli_serve_sigterm_graceful_exit(tmp_path):
    """The CLI wiring end to end: `repro serve` under SIGTERM stops
    accepting, drains, prints the final stats, and exits 0."""
    import os
    import signal
    import subprocess
    import sys
    import time as _time
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", ":0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        line = proc.stdout.readline()
        assert "listening on" in line
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
    assert "shutdown: draining complete" in out
    assert "0 sessions" in out
