"""Active Messages: the wire codec and the hidden activity field."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import ActivityLabel
from repro.errors import NetworkError
from repro.hw.radio import Frame
from repro.tos.am import AM_BROADCAST, decode_frame, encode_frame


def test_codec_roundtrip_simple():
    frame = Frame(src=1, dst=4, am_type=0x42, payload=b"hello",
                  activity=ActivityLabel(4, 7).encode(), seqno=9)
    decoded = decode_frame(encode_frame(frame))
    assert decoded.src == 1
    assert decoded.dst == 4
    assert decoded.am_type == 0x42
    assert decoded.payload == b"hello"
    assert decoded.activity == ActivityLabel(4, 7).encode()
    assert decoded.seqno == 9


def test_wire_length_matches_frame_length():
    frame = Frame(src=1, dst=2, am_type=1, payload=b"x" * 10)
    raw = encode_frame(frame)
    assert len(raw) == frame.length


@settings(max_examples=60, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=0xFFFF),
    dst=st.integers(min_value=0, max_value=0xFFFF),
    am_type=st.integers(min_value=0, max_value=0xFF),
    payload=st.binary(max_size=100),
    activity=st.integers(min_value=0, max_value=0xFFFF),
    seqno=st.integers(min_value=0, max_value=0xFF),
)
def test_codec_roundtrip_property(src, dst, am_type, payload, activity,
                                  seqno):
    frame = Frame(src=src, dst=dst, am_type=am_type, payload=payload,
                  activity=activity, seqno=seqno)
    decoded = decode_frame(encode_frame(frame))
    assert (decoded.src, decoded.dst, decoded.am_type, decoded.payload,
            decoded.activity, decoded.seqno) == (
        src, dst, am_type, payload, activity, seqno)


def test_crc_detects_corruption():
    raw = bytearray(encode_frame(Frame(src=1, dst=2, am_type=1,
                                       payload=b"data")))
    raw[5] ^= 0xFF
    with pytest.raises(NetworkError):
        decode_frame(bytes(raw))


def test_truncated_frame_rejected():
    with pytest.raises(NetworkError):
        decode_frame(b"\x00" * 5)


def test_length_field_mismatch_rejected():
    raw = bytearray(encode_frame(Frame(src=1, dst=2, am_type=1,
                                       payload=b"data")))
    # Shorten the payload but keep the header's length byte and fix CRC:
    # decode must reject the inconsistency (we simply cut bytes; CRC fails
    # first, which is also acceptable rejection).
    with pytest.raises(NetworkError):
        decode_frame(bytes(raw[:-3]))


def test_send_stamps_cpu_activity(bounce_run):
    """Integration: frames on the air carry the sender's activity."""
    network, (node1, node4), (app1, app4) = bounce_run
    # Both apps exchanged packets; node1 received node4's original packet
    # carrying 4:BounceApp.
    assert app1.received > 0
    remote = node1.registry.label(4, "BounceApp")
    assert node1.am.received > 0
    # The AM layer bound the CPU to the remote label at least once.
    binds = [e for e in node1.entries()
             if e.type_name == "act_bind" and e.res_id == 0
             and e.value == remote.encode()]
    assert binds


def test_broadcast_constant():
    assert AM_BROADCAST == 0xFFFF
