"""Unit helpers: conversions and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_time_conversions_exact():
    assert units.us(1) == 1_000
    assert units.ms(1) == 1_000_000
    assert units.seconds(1) == 1_000_000_000
    assert units.ms(1.5) == 1_500_000
    assert units.ns(1234.4) == 1234


def test_time_roundtrips():
    assert units.to_us(units.us(250)) == 250.0
    assert units.to_ms(units.ms(3.25)) == 3.25
    assert units.to_s(units.seconds(48)) == 48.0


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_seconds_roundtrip_property(value):
    assert units.to_s(units.seconds(value)) == pytest.approx(value, abs=1e-9)


def test_electrical_conversions():
    assert units.ma(1) == 1e-3
    assert units.ua(500) == pytest.approx(500e-6)
    assert units.to_ma(0.0025) == pytest.approx(2.5)
    assert units.mw(61.8) == pytest.approx(0.0618)
    assert units.to_mw(0.0618) == pytest.approx(61.8)
    assert units.uj(8.33) == pytest.approx(8.33e-6)
    assert units.to_mj(0.52123) == pytest.approx(521.23)


def test_fmt_time_picks_unit():
    assert units.fmt_time(units.seconds(2)) == "2.000 s"
    assert units.fmt_time(units.ms(1.5)) == "1.500 ms"
    assert units.fmt_time(units.us(24)) == "24.000 us"
    assert units.fmt_time(12) == "12.000 ns"
    assert units.fmt_time(0) == "0 ns"


def test_fmt_energy_picks_unit():
    assert units.fmt_energy(1.5) == "1.500 J"
    assert units.fmt_energy(0.18071) == "180.71 mJ"
    assert units.fmt_energy(8.33e-6) == "8.33 uJ"
    assert units.fmt_energy(5e-9) == "5.00 nJ"


def test_fmt_power_picks_unit():
    assert units.fmt_power(0.0618) == "61.800 mW"
    assert units.fmt_power(2.0) == "2.000 W"
    assert units.fmt_power(5e-6) == "5.00 uW"
