"""PowerState / PowerStateTrack interfaces."""

import pytest

from repro.core.powerstate import PowerStateTracker, PowerStateVar
from repro.errors import PowerModelError


def test_set_and_names():
    var = PowerStateVar("Radio", 4, {0: "OFF", 3: "RX"}, baseline_value=0)
    assert var.value == 0
    assert var.state_name() == "OFF"
    var.set(3)
    assert var.state_name() == "RX"
    assert var.state_name(99) == "state99"


def test_idempotent_set_no_notification():
    var = PowerStateVar("LED0", 1)
    events = []
    var.add_tracker(lambda v, value: events.append(value))
    var.set(1)
    var.set(1)
    var.set(0)
    assert events == [1, 0]
    assert var.change_count == 2


def test_set_bits_updates_field():
    var = PowerStateVar("Composite", 5, initial_value=0b0000)
    var.set_bits(mask=0b11, offset=2, value=0b10)
    assert var.value == 0b1000
    var.set_bits(mask=0b1, offset=0, value=1)
    assert var.value == 0b1001
    # Clearing the upper field leaves the lower bit.
    var.set_bits(mask=0b11, offset=2, value=0)
    assert var.value == 0b0001


def test_set_bits_validation():
    var = PowerStateVar("X", 5)
    with pytest.raises(PowerModelError):
        var.set_bits(mask=-1, offset=0, value=1)


def test_value_range_enforced():
    var = PowerStateVar("X", 5)
    with pytest.raises(PowerModelError):
        var.set(1 << 16)


def test_tracker_creates_and_fans_out():
    tracker = PowerStateTracker()
    led = tracker.create("LED0", 1)
    radio = tracker.create("Radio", 4, {0: "OFF", 3: "RX"})
    seen = []
    tracker.add_listener(lambda var, value: seen.append((var.name, value)))
    led.set(1)
    radio.set(3)
    assert seen == [("LED0", 1), ("Radio", 3)]


def test_tracker_duplicate_res_id_rejected():
    tracker = PowerStateTracker()
    tracker.create("A", 1)
    with pytest.raises(PowerModelError):
        tracker.create("B", 1)


def test_tracker_lookup_and_ordering():
    tracker = PowerStateTracker()
    tracker.create("B", 2)
    tracker.create("A", 1)
    assert [v.name for v in tracker.all_vars()] == ["A", "B"]
    assert tracker.var(2).name == "B"
    with pytest.raises(PowerModelError):
        tracker.var(9)


def test_snapshot():
    tracker = PowerStateTracker()
    a = tracker.create("A", 1)
    b = tracker.create("B", 2, initial_value=3)
    a.set(1)
    assert tracker.snapshot() == {1: 1, 2: 3}
