"""The paper's applications, functionally."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.network import Network
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import ms, seconds


def test_blink_toggle_counts(blink_run):
    sim, node, app = blink_run
    # Red toggles every second (47 full fires in 48 s given boot offset),
    # green every 2 s, blue every 4 s.
    assert app.toggles[0] in (47, 48)
    assert app.toggles[1] in (23, 24)
    assert app.toggles[2] in (11, 12)


def test_blink_led_on_times(blink_run):
    sim, node, app = blink_run
    timeline = node.timeline()
    for res_id in (1, 2, 3):
        on_ns = sum(iv.dt_ns for iv in timeline.power_intervals()
                    if iv.state_of(res_id) == 1)
        assert on_ns == pytest.approx(seconds(24), rel=0.03)


def test_bounce_exchanges_packets(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    assert app1.received >= 2
    assert app4.received >= 2
    assert app1.bounces >= 1
    assert app4.bounces >= 1


def test_bounce_charges_remote_activity(bounce_run):
    network, (node1, node4), (app1, app4) = bounce_run
    emap = node1.energy_map(fold_proxies=True)
    by_activity = emap.energy_by_activity()
    assert by_activity.get("4:BounceApp", 0.0) > 0.0
    # And symmetrically on the other node.
    emap4 = node4.energy_map(fold_proxies=True)
    assert emap4.energy_by_activity().get("1:BounceApp", 0.0) > 0.0


def test_sense_and_send_without_radio():
    from repro.apps.sense_send import SenseAndSendApp

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1),
                      rng_factory=RngFactory(0))
    app = SenseAndSendApp(period_ns=seconds(2), send=False)
    node.boot(app.start)
    sim.run(until=seconds(7))
    assert app.samples_taken >= 2
    # Sensor energy is attributed to the sensing activities.
    emap = node.energy_map(fold_proxies=True)
    by_activity = emap.energy_by_activity()
    assert by_activity.get("1:ACT_HUM", 0.0) > 0.0
    assert by_activity.get("1:ACT_TEMP", 0.0) > 0.0


def test_sense_and_send_with_radio():
    from repro.apps.sense_send import SenseAndSendApp

    network = Network(seed=0)
    sender = network.add_node(NodeConfig(node_id=1, mac="csma"))
    sink = network.add_node(NodeConfig(node_id=0, mac="csma"))
    got = []
    app = SenseAndSendApp(sink_id=0, period_ns=seconds(2))

    def sink_app(n):
        n.am.register_receiver(0x53, got.append)
        n.mac.start()

    network.boot_all({1: app.start, 0: sink_app})
    network.run(seconds(7))
    assert app.packets_sent >= 2
    assert len(got) >= 2


def test_timer_leak_app_counts():
    from repro.apps.timer_leak import TimerLeakApp
    from repro.hw.platform import PlatformConfig

    sim = Simulator()
    node = QuantoNode(
        sim,
        NodeConfig(node_id=32, platform=PlatformConfig(dco_calibration=True)),
        rng_factory=RngFactory(0))
    app = TimerLeakApp()
    node.boot(app.start)
    sim.run(until=seconds(2))
    assert app.calibration_interrupts() == pytest.approx(32, abs=2)


def test_flood_reaches_all_nodes():
    from repro.apps.flood import FloodApp

    network = Network(seed=3)
    apps = {}
    for node_id in (1, 2, 3, 4):
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
        apps[node_id] = FloodApp(originate=(node_id == 1))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(seconds(3))
    receivers = [nid for nid, app in apps.items() if app.forwards > 0]
    # At least some non-origin nodes heard and forwarded the flood
    # (rebroadcasts can collide; the flood is best-effort by design).
    assert len(receivers) >= 2
    assert apps[1].forwards == 0  # the originator suppresses its own


def test_flood_network_energy_attribution():
    from repro.apps.flood import FloodApp
    from repro.core.netmerge import merge_energy_maps

    network = Network(seed=3)
    apps = {}
    for node_id in (1, 2, 3):
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
        apps[node_id] = FloodApp(originate=(node_id == 1))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(seconds(3))
    maps = {nid: network.node(nid).energy_map(fold_proxies=True)
            for nid in apps}
    report = merge_energy_maps(maps)
    assert report.by_activity.get("1:Flood", 0.0) > 0.0
    # Much of the flood's cost lands on nodes other than the origin.
    assert report.remote_fraction("1:Flood", 1) > 0.2


def test_dma_app_measures_send(bounce_run=None):
    from repro.apps.dma_compare import OneShotSenderApp

    network = Network(seed=0)
    network.add_node(NodeConfig(node_id=1, mac="csma"))
    app = OneShotSenderApp()
    network.boot_all({1: app.start})
    network.run(seconds(1))
    assert app.duration_ns is not None
    assert ms(2) < app.duration_ns < ms(40)
