"""Arbiters: FIFO grants and automatic activity transfer."""

import pytest

from repro.core.activity import SingleActivityDevice
from repro.errors import SimulationError
from repro.tos.arbiter import Arbiter
from repro.units import ms


def test_fifo_grant_order(node, sim):
    arbiter = Arbiter("bus", node.scheduler)
    order = []

    def app(n):
        arbiter.request("a", lambda: order.append("a"))
        arbiter.request("b", lambda: order.append("b"))

    node.boot(app)
    sim.run(until=ms(5))
    # Only the first client is granted until it releases.
    assert order == ["a"]
    assert arbiter.owner == "a"
    node.scheduler.post_function(lambda: arbiter.release("a"))
    sim.run(until=ms(10))
    assert order == ["a", "b"]
    assert arbiter.owner == "b"


def test_grant_transfers_requester_activity(node, sim):
    resource = SingleActivityDevice("Flash", 5, node.idle)
    arbiter = Arbiter("bus", node.scheduler,
                      resource_activity=resource, idle_label=node.idle)
    red = node.activity("Red")
    observed = []

    def app(n):
        n.cpu_activity.set(red)
        arbiter.request("client", lambda: observed.append(resource.get()))

    node.boot(app)
    sim.run(until=ms(5))
    # On grant the resource was painted with the requester's activity.
    assert observed == [red]
    node.scheduler.post_function(lambda: arbiter.release("client"))
    sim.run(until=ms(10))
    assert resource.get() == node.idle


def test_release_by_non_owner_rejected(node, sim):
    arbiter = Arbiter("bus", node.scheduler)
    node.boot(lambda n: arbiter.request("a", lambda: None))
    sim.run(until=ms(5))
    with pytest.raises(SimulationError):
        arbiter.release("b")


def test_grant_callback_runs_under_requester_activity(node, sim):
    arbiter = Arbiter("bus", node.scheduler)
    red = node.activity("Red")
    seen = []

    def app(n):
        n.cpu_activity.set(red)
        arbiter.request("c", lambda: seen.append(n.cpu_activity.get()))
        n.cpu_activity.set(n.idle)

    node.boot(app)
    sim.run(until=ms(5))
    assert seen == [red]


def test_queued_grants_count(node, sim):
    arbiter = Arbiter("bus", node.scheduler)

    def app(n):
        for name in ("a", "b", "c"):
            arbiter.request(name, lambda: None)

    node.boot(app)
    sim.run(until=ms(5))
    assert arbiter.grants == 1  # b and c still queued behind a
