"""The incremental wire decoder: chunk boundaries must not matter.

:class:`repro.core.logger.WireDecoder` is the network-facing decode
path — the ingest server feeds it whatever chunks TCP delivers.  The
contract fuzzed here: for ANY split of a packed log (mid-entry, one
byte at a time, mid-u32-wrap), the reassembled entry stream is
*identical* to the one-shot :func:`iter_entries` decode — same unwrap,
same seq numbers — and the columns built from it match the vectorized
:func:`decode_columns` output.
"""

import random

import numpy as np
import pytest

from repro.core.logger import (
    ENTRY_SIZE,
    ENTRY_STRUCT,
    TYPE_POWERSTATE,
    LogColumns,
    WireDecoder,
    decode_columns,
    iter_entries,
)
from repro.errors import LoggerError
from repro.experiments.common import run_blink
from repro.units import seconds

U32 = 1 << 32


def random_chunks(raw, rng, max_chunk):
    """Split ``raw`` at random offsets (most cuts land mid-entry)."""
    offset = 0
    while offset < len(raw):
        step = rng.randint(1, max_chunk)
        yield raw[offset:offset + step]
        offset += step


def feed_chunked(raw, chunks):
    decoder = WireDecoder()
    entries = []
    for chunk in chunks:
        entries.extend(decoder.feed(chunk))
    decoder.finish()
    assert decoder.pending_bytes == 0
    assert decoder.entries_decoded == len(entries)
    return entries


def assert_columns_equal(entries, raw):
    """The reassembled stream feeds the columnar path identically."""
    rebuilt = LogColumns.from_entries(entries)
    oneshot = decode_columns(raw)
    for field in ("type", "res_id", "time_ns", "icount", "value"):
        assert np.array_equal(getattr(rebuilt, field),
                              getattr(oneshot, field)), field


# -- golden experiment logs --------------------------------------------------


@pytest.fixture(scope="module")
def blink_raw():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    return bytes(node.logger.raw_bytes())


def test_chunked_equals_oneshot_on_blink(blink_raw):
    reference = list(iter_entries(blink_raw))
    rng = random.Random(0xC0FFEE)
    for _trial in range(8):
        entries = feed_chunked(blink_raw,
                               random_chunks(blink_raw, rng, 37))
        assert entries == reference
    assert_columns_equal(reference, blink_raw)


def test_one_byte_at_a_time(blink_raw):
    entries = feed_chunked(blink_raw,
                           (blink_raw[i:i + 1]
                            for i in range(len(blink_raw))))
    assert entries == list(iter_entries(blink_raw))


def test_single_chunk_is_the_degenerate_split(blink_raw):
    assert feed_chunked(blink_raw, [blink_raw]) \
        == list(iter_entries(blink_raw))


def test_network_log_random_splits():
    """Cross-node logs (proxy binds, remote labels) through prime-sized
    chunks: entry boundaries drift through every offset mod 12."""
    from repro.apps.bounce import BounceApp
    from repro.tos.network import Network
    from repro.tos.node import NodeConfig
    from repro.units import ms

    network = Network(seed=1)
    network.add_node(NodeConfig(node_id=1, mac="csma"))
    network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(3))
    for node_id in (1, 4):
        raw = bytes(network.node(node_id).logger.raw_bytes())
        reference = list(iter_entries(raw))
        for chunk_size in (7, 11, 13, 1021):
            entries = feed_chunked(
                raw, (raw[i:i + chunk_size]
                      for i in range(0, len(raw), chunk_size)))
            assert entries == reference
        assert_columns_equal(reference, raw)


# -- u32 wrap state across feeds ---------------------------------------------


def pack_truth(true_values):
    """Pack (time_us, icount) truth pairs, wrapping both fields to u32."""
    raw = bytearray()
    for time_us, icount in true_values:
        raw += ENTRY_STRUCT.pack(
            TYPE_POWERSTATE, 0, time_us % U32, icount % U32, 0)
    return bytes(raw)


def test_wrap_state_carries_across_feeds():
    """Split exactly so the wrap is detected in a *later* feed than the
    entry that established the pre-wrap watermark."""
    truth = [
        (U32 - 1000, 10),
        (U32 - 1, 20),
        (U32 + 500, U32 + 5),   # both fields wrap here
        (U32 + 900, U32 + 50),
        (2 * U32 + 3, 2 * U32),  # and wrap again
    ]
    raw = pack_truth(truth)
    # Cut mid-entry *inside* the wrapping record: the decoder must hold
    # 7 bytes of the wrapped entry while remembering the old watermark.
    cut = 2 * ENTRY_SIZE + 5
    decoder = WireDecoder()
    first = decoder.feed(raw[:cut])
    assert len(first) == 2 and decoder.pending_bytes == 5
    rest = decoder.feed(raw[cut:])
    entries = first + rest
    decoder.finish()
    assert [(e.time_us, e.icount) for e in entries] == truth


def test_wrap_fuzz_random_splits():
    rng = random.Random(31337)
    for _trial in range(20):
        truth, time_us, icount = [], 0, 0
        for _ in range(40):
            time_us += rng.randint(0, U32 // 3)
            icount += rng.randint(0, U32 // 3)
            truth.append((time_us, icount))
        raw = pack_truth(truth)
        entries = feed_chunked(raw, random_chunks(raw, rng, 17))
        assert [(e.time_us, e.icount) for e in entries] == truth
        assert entries == list(iter_entries(raw))


# -- snapshot / restore ------------------------------------------------------


def snapshot_round_trip_at(raw, cut):
    """Feed ``raw[:cut]``, snapshot, restore into a NEW decoder, feed
    the rest — the crash/restart shape of the ingest server."""
    first = WireDecoder()
    entries = first.feed(raw[:cut])
    state = first.snapshot()
    # The snapshot must survive serialization (checkpoints store it).
    import json

    second = WireDecoder.from_snapshot(json.loads(json.dumps(state)))
    assert second.entries_decoded == first.entries_decoded
    assert second.pending_bytes == first.pending_bytes
    entries += second.feed(raw[cut:])
    second.finish()
    return entries


def test_snapshot_restore_at_every_split_across_wraps():
    """The satellite contract: a restore point at EVERY byte offset of
    a log whose time and icount both wrap u32 (including cuts inside
    the wrapping entry itself) resumes to the identical entry stream."""
    truth = [
        (U32 - 1000, 10),
        (U32 - 1, 20),
        (U32 + 500, U32 + 5),    # both fields wrap here
        (U32 + 900, U32 + 50),
        (2 * U32 + 3, 2 * U32),  # and wrap again
        (2 * U32 + 7, 3 * U32 - 1),
        (3 * U32, 3 * U32 + 2),  # time wraps alone
    ]
    raw = pack_truth(truth)
    reference = list(iter_entries(raw))
    for cut in range(len(raw) + 1):
        entries = snapshot_round_trip_at(raw, cut)
        assert entries == reference, f"diverged restoring at byte {cut}"
        assert [(e.time_us, e.icount) for e in entries] == truth


def test_snapshot_restore_fuzz_on_random_wrap_logs():
    """Random wrap-heavy logs, random restore points, random chunking
    after the restore — mirroring the chunk fuzz above."""
    rng = random.Random(0xD15C)
    for _trial in range(10):
        truth, time_us, icount = [], 0, 0
        for _ in range(40):
            time_us += rng.randint(0, U32 // 2)
            icount += rng.randint(0, U32 // 2)
            truth.append((time_us, icount))
        raw = pack_truth(truth)
        reference = list(iter_entries(raw))
        for _restore in range(8):
            cut = rng.randint(0, len(raw))
            first = WireDecoder()
            entries = []
            for chunk in random_chunks(raw[:cut], rng, 17):
                entries.extend(first.feed(chunk))
            second = WireDecoder.from_snapshot(first.snapshot())
            for chunk in random_chunks(raw[cut:], rng, 17):
                entries.extend(second.feed(chunk))
            second.finish()
            assert entries == reference


def test_snapshot_restore_on_blink(blink_raw):
    reference = list(iter_entries(blink_raw))
    for cut in (0, 5, ENTRY_SIZE, len(blink_raw) // 2 + 7,
                len(blink_raw) - 1, len(blink_raw)):
        assert snapshot_round_trip_at(blink_raw, cut) == reference


def test_bad_snapshots_are_rejected():
    with pytest.raises(LoggerError, match="snapshot"):
        WireDecoder.from_snapshot({"partial": "00"})  # missing fields
    whole_entry = WireDecoder()
    whole_entry.feed(pack_truth([(1, 1)]))
    state = whole_entry.snapshot()
    state["partial"] = "00" * ENTRY_SIZE  # a full entry can't be pending
    with pytest.raises(LoggerError, match="snapshot"):
        WireDecoder.from_snapshot(state)


# -- state/diagnostics -------------------------------------------------------


def test_finish_raises_on_torn_tail(blink_raw):
    decoder = WireDecoder()
    decoder.feed(blink_raw[:ENTRY_SIZE + 5])
    assert decoder.pending_bytes == 5
    with pytest.raises(LoggerError, match="partial entry"):
        decoder.finish()


def test_finish_is_clean_on_entry_boundary(blink_raw):
    decoder = WireDecoder()
    decoder.feed(blink_raw)
    decoder.finish()  # no raise


def test_empty_feeds_are_noops():
    decoder = WireDecoder()
    assert decoder.feed(b"") == []
    assert decoder.feed(b"\x01") == []  # sub-entry: buffered only
    assert decoder.pending_bytes == 1
    assert decoder.entries_decoded == 0
