"""Ablation: proxy folding on vs off over the same Bounce log."""

from conftest import run_once

from repro.experiments import ablation_proxies


def test_ablation_proxies(benchmark, archive):
    result = run_once(benchmark, ablation_proxies.run)
    archive(result)
    # Folding strictly grows the remote activity's share ...
    assert result.data["remote_folded_mj"] > result.data["remote_unfolded_mj"]
    # ... while conserving the total (it only moves energy between rows).
    assert result.data["totals_match"]
