"""Ablation: meter gain error and jitter vs breakdown quality."""

from conftest import run_once

from repro.experiments import ablation_noise


def test_ablation_noise(benchmark, archive):
    result = run_once(benchmark, ablation_noise.run)
    archive(result)
    # A pure gain error rescales all estimates uniformly: the breakdown's
    # *shape* survives meter miscalibration.
    assert result.data["spread"] < 0.02
