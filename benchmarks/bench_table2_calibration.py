"""Table 2: oscilloscope calibration of Blink's eight steady states."""

from conftest import run_once

from repro.experiments import table2


def test_table2_calibration(benchmark, archive):
    result = run_once(benchmark, table2.run)
    archive(result)
    est = result.data["estimates_ma"]
    # The regression must recover the actual (non-datasheet) draws, in the
    # paper's measured range, and close with a small relative error.
    assert abs(est["LED0"] - 2.50) < 0.25
    assert abs(est["LED1"] - 2.23) < 0.25
    assert abs(est["LED2"] - 0.83) < 0.15
    assert abs(result.data["const_ma"] - 0.82) < 0.15
    assert result.data["relative_error"] < 0.03
    # One iCount pulse carries ~8.33 uJ.
    assert abs(result.data["uj_per_pulse"] - 8.33) < 0.1
