"""Extension: the Table-1 TX power ladder, recovered from the meter."""

from conftest import run_once

from repro.experiments import ext_txpower


def test_ext_txpower(benchmark, archive):
    result = run_once(benchmark, ext_txpower.run)
    archive(result)
    # Every setting's draw recovered within a reasonable band (short TX
    # bursts leave boundary-timing skew) and the ladder is monotone —
    # the structural claim.
    assert result.data["mean_err_pct"] < 15.0
    assert result.data["monotone_pairs"] >= 6  # of 7 adjacent pairs
