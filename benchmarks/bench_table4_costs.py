"""Table 4: the costs of logging."""

from conftest import run_once

from repro.experiments import table4


def test_table4_costs(benchmark, archive):
    result = run_once(benchmark, table4.run)
    archive(result)
    # The cost model is the paper's, exactly.
    data = result.data
    assert 400 <= data["records"] <= 800
    # Logging dominates *active* CPU time but is negligible overall —
    # the paper's 71 % / 0.12 % / 0.08 % structure.
    assert data["active_share_pct"] > 40.0
    assert data["total_share_pct"] < 0.2
    assert data["energy_share_pct"] < 0.15
