"""Ablation: RAM logging vs continuous drain vs online counters."""

from conftest import run_once

from repro.experiments import ablation_logging


def test_ablation_logging(benchmark, archive):
    result = run_once(benchmark, ablation_logging.run)
    archive(result)
    data = result.data
    # Drain mode ships the log with bounded resident memory and modest
    # extra records (its own activity switches are themselves logged).
    assert data["drain_records"] >= data["ram_records"]
    assert data["drain_records"] < 2 * data["ram_records"]
    assert data["drain_task_runs"] > 0
    # Counters are fixed-memory.
    assert data["counter_memory_bytes"] <= 256
    # The online view charges node energy to the CPU-resident activity:
    # in Blink that is overwhelmingly Idle (the CPU sleeps with LEDs on).
    assert data["online_mj"].get("1:Idle", 0.0) > 400.0
