"""Figure 16: interrupt-driven vs DMA SPI transfer timing."""

from conftest import run_once

from repro.experiments import fig16


def test_fig16_dma(benchmark, archive):
    result = run_once(benchmark, fig16.run)
    archive(result)
    # The paper's claim: the DMA transfer is at least twice as fast.
    assert result.data["speedup"] >= 2.0
    # And the total send is visibly faster too.
    assert result.data["total_dma_ms"] < result.data["total_irq_ms"]
