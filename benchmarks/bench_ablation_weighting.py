"""Ablation: regression weighting schemes vs ground truth."""

from conftest import run_once

from repro.experiments import ablation_weighting


def test_ablation_weighting(benchmark, archive):
    result = run_once(benchmark, ablation_weighting.run)
    archive(result)
    errors = result.data["errors"]
    # Time/energy-aware weightings beat the unweighted fit on this
    # workload (short noisy states would otherwise dominate).
    assert errors["sqrt_et"] < errors["none"]
    assert errors["sqrt_et"] < 5.0
