"""Extension: multihop collection priced network-wide."""

from conftest import run_once

from repro.experiments import ext_collection


def test_ext_collection(benchmark, archive):
    result = run_once(benchmark, ext_collection.run)
    archive(result)
    assert result.data["delivered"] >= 5
    assert 12 in result.data["origins_at_root"]
    # The leaf's data costs energy on the relays, not just at home.
    assert result.data["leaf_remote_fraction"] > 0.1
