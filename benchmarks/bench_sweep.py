"""Sweep runner: batch width and worker pool wall time on a campaign.

Unlike the table/figure benches (one simulation, archived tables), this
bench measures the *fleet* layer itself: the same 64-point table3
campaign at batch K=1 (one world at a time), at the default batch width
(K worlds interleaved per process on one shared event queue), and on a
worker pool — asserting all results are byte-identical and recording
the speedups under ``results/``.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_sweep.py``)
or via pytest.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.report import format_table
from repro.sim.sweep import run_sweep
from repro.units import seconds

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_engine import SWEEP_OVERRIDES, SWEEP_SEEDS  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: The 64-point reference grid — one definition, shared with
#: benchmarks/bench_engine.py so the two benches (and the --check
#: digest cross-check) can never drift onto different grids.
SEEDS = SWEEP_SEEDS
OVERRIDES = SWEEP_OVERRIDES
# At least 2 workers so the pool path is always exercised, even on a
# single-core box (where parallelism cannot beat serial — the report
# records the core count so the speedup column is read in context).
JOBS = max(2, min(4, os.cpu_count() or 1))


def bench_sweep() -> str:
    from repro.sim.sweep import resolve_batch

    batch_k = resolve_batch(None)
    serial = run_sweep("table3", SEEDS, OVERRIDES, jobs=1, batch=1)
    batched = run_sweep("table3", SEEDS, OVERRIDES, jobs=1)
    parallel = run_sweep("table3", SEEDS, OVERRIDES, jobs=JOBS)
    assert serial.digest() == batched.digest(), \
        "batched sweep diverged from serial reference"
    assert serial.digest() == parallel.digest(), \
        "parallel sweep diverged from serial reference"

    batch_speedup = serial.wall_s / batched.wall_s if batched.wall_s else 0.0
    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    per_point_ms = 1000 * serial.wall_s / len(serial.points)
    rows = [
        ("serial (batch=1)", "1", f"{serial.wall_s:.3f}", "1.00"),
        (f"batched (K={batch_k})", "1", f"{batched.wall_s:.3f}",
         f"{batch_speedup:.2f}"),
        (f"parallel (K={batch_k})", str(JOBS), f"{parallel.wall_s:.3f}",
         f"{speedup:.2f}"),
    ]
    led0 = parallel.metric("energy_by_pair_mj.LED0/1:Red")
    report = "\n\n".join([
        f"== sweep bench: table3 x {len(serial.points)} seeds "
        f"({os.cpu_count()} cpu) ==\n"
        f"-- digests match: {serial.digest()[:16]}\n"
        f"-- serial: {per_point_ms:.2f} ms/point",
        format_table(("mode", "jobs", "wall (s)", "speedup"), rows,
                     title="batch width and pool wall time"),
        f"E[LED0/1:Red] = {led0.mean:.2f} +/- {led0.stddev:.2f} mJ "
        f"over {led0.n} seeds",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sweep_table3_timing.txt").write_text(report + "\n")
    return report


def test_sweep_serial_vs_parallel(capsys):
    report = bench_sweep()
    with capsys.disabled():
        print()
        print(report)


if __name__ == "__main__":
    print(bench_sweep())
