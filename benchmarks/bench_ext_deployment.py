"""Extension: the dying-node deployment case study."""

from conftest import run_once

from repro.experiments import ext_deployment


def test_ext_deployment(benchmark, archive):
    result = run_once(benchmark, ext_deployment.run)
    archive(result)
    stats = result.data["stats"]
    # The node near the AP burns measurably more than its siblings ...
    assert result.data["power_ratio"] > 1.3
    # ... its waste sits on the unbound receive proxy ...
    assert stats[13]["pxy_waste_mj"] > 5 * max(
        stats[11]["pxy_waste_mj"], stats[12]["pxy_waste_mj"], 0.001)
    # ... and the healthy nodes saw no false wake-ups at all.
    assert stats[11]["detections"] == 0
    assert stats[12]["detections"] == 0
    # The network still worked: samples reached the root.
    assert result.data["delivered"] > 0
