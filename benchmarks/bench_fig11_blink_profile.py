"""Figure 11: Blink's activity/power profile and the stacked
reconstruction against the meter."""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_blink_profile(benchmark, archive):
    result = run_once(benchmark, fig11.run)
    archive(result)
    # Reconstructed energy matches the metered envelope (paper: 0.004 %).
    assert result.data["reconstruction_gap"] < 0.001
    # Event volume in the paper's regime (597 entries over 48 s).
    assert 400 <= result.data["log_entries"] <= 800
