"""Figure 13: 802.11 interference on low-power listening."""

from conftest import run_once

from repro.experiments import fig13


def test_fig13_interference(benchmark, archive):
    result = run_once(benchmark, fig13.run)
    archive(result)
    ch17 = result.data["ch17"]
    ch26 = result.data["ch26"]
    # Channel 26 (43 MHz from the Wi-Fi carrier) sees no false positives;
    # channel 17 sees them at roughly the paper's 17.8 % rate.
    assert ch26["detections"] == 0
    assert 0.10 <= ch17["fp_rate"] <= 0.28
    # Duty cycles: ~2.2 % clean, elevated ~2-3x under interference.
    assert abs(ch26["duty_pct"] - 2.22) < 0.5
    assert ch17["duty_pct"] > 1.7 * ch26["duty_pct"]
    # Average power strictly higher on the interfered channel.
    assert ch17["power_mw"] > 1.3 * ch26["power_mw"]
