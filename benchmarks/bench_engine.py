"""Engine/pipeline throughput baseline: the perf-trajectory benchmark.

Measures the numbers that the simulator and analysis fast paths are
judged by and writes them to ``results/BENCH_engine.json`` so future PRs
have a machine-readable baseline:

* ``engine_events_per_sec`` — raw calendar-queue throughput on a
  synthetic workload (bursty same-instant events, far-future timer arms,
  cancellations);
* ``analysis_entries_per_sec`` — decode → cover → attribute throughput
  of the offline analysis over a real Blink log, **per backend**
  (``streaming`` vs ``columnar``), plus ``analysis_speedup_columnar``;
  the two maps are asserted bit-identical before any speedup is
  reported;
* ``windowed_entries_per_sec`` — live-path throughput (chunked
  ``WireDecoder`` feeding a ``WindowedAccumulator`` at a 1 s stride),
  the per-node cost of the ingest server; the folded windows are
  asserted bit-identical to the offline map first;
* ``serve_recovery_ms`` — wall time for the durable ingest path to
  rebuild one node session from its checkpoint + journal-tail replay
  (a half-log tail, the post-SIGKILL shape).  Recorded, not gated;
* ``sweep_points_per_sec_serial`` — end-to-end table3 points per second
  on the 64-point reference grid with batching off (``batch=1``): the
  strict one-world-at-a-time reference;
* ``batched_points_per_sec`` — the same grid through the default
  in-process executor (K worlds per batch on one shared event queue,
  fused log decode); this is what a plain ``--jobs 1`` sweep now
  delivers, and the headline number the regression gate watches;
* ``sweep_points_per_sec_cached`` — the same grid folded entirely from
  a warm packed shard store (cache-hit throughput; the marginal cost of
  a fully cached campaign, also gated);
* ``parallel_speedup_jobs2`` — wall-clock speedup of the same grid at
  ``--jobs 2``.  Only meaningful with >= 2 usable cores: the JSON
  records ``cpu_count``/``usable_cpus``, ``--check`` gates the speedup
  (>= 1.5x) **only** on a multi-core host, and a single-core box
  records the number without judging it.

Every timing is the **median of 3** independent runs, with the relative
spread ``(max - min) / median`` recorded alongside — a single-shot
number on a busy host is measurement noise (the pre-PR-4 baseline
reported a 1.195x "parallel speedup" on a 1-CPU container).

``--check`` compares fresh serial/batched throughput and
columnar-analysis measurements against the committed baseline and exits
nonzero if any regressed by more than the tolerance (default 25 %, the
CI gate).  ``--check-parallel`` runs only the sweep grid and gates the
``--jobs 2`` speedup against the multi-core floor — the taskset-pinned
CI leg that proves the pool actually scales when cores exist.
Runnable standalone (``PYTHONPATH=src python benchmarks/bench_engine.py
[--check|--check-parallel]``) or via pytest.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.core.accounting import columnar_energy_map, stream_energy_map
from repro.core.logger import iter_entries
from repro.sim.engine import NEAR_WINDOW_NS, Simulator
from repro.sim.sweep import run_sweep
from repro.units import seconds

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_engine.json"

#: The reference sweep grid: 64 table3 points with the paper's noise
#: sources on (full-length runs, so the campaign is realistic work).
#: benchmarks/bench_sweep.py imports these — keep the grid defined once.
SWEEP_SEEDS = range(64)
SWEEP_OVERRIDES = {
    "duration_ns": [str(seconds(48))],
    "device_variation": ["0.02"],
    "icount_jitter_pulses": ["1.0"],
}

#: Gated throughputs may regress by at most this factor before --check
#: fails (the CI gate; override with REPRO_BENCH_TOLERANCE).
DEFAULT_TOLERANCE = 0.25

#: Minimum --jobs 2 wall-clock speedup required on a host with >= 2
#: usable cores (override with REPRO_BENCH_PARALLEL_FLOOR).  A 1-CPU
#: host records the speedup without gating it — two workers sharing one
#: core can only lose to the serial run.
PARALLEL_SPEEDUP_FLOOR = 1.5

#: Independent timing runs per metric; the median is reported.
REPEATS = 3


def _usable_cpus() -> int:
    """Cores this process may actually run on: the scheduling affinity
    mask where the platform exposes one (so a taskset-pinned or
    containerized run reports its real allowance), else cpu_count."""
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            usable = len(affinity(0))
            if usable > 0:
                return usable
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def _median_spread(samples: list[float]) -> tuple[float, float]:
    """Median plus relative spread ``(max - min) / median`` — the
    honest way to report a timing on a shared host."""
    median = statistics.median(samples)
    spread = (max(samples) - min(samples)) / median if median else 0.0
    return median, spread


def bench_engine_events(total: int = 60_000) -> float:
    """Raw scheduler throughput: a synthetic mix of same-instant bursts,
    short hops, far-future arms, and cancellations."""
    sim = Simulator()
    fired = [0]

    def hop(step: int) -> None:
        fired[0] += 1
        if fired[0] >= total:
            return
        # A burst at the same instant, a short hop, and a far arm whose
        # predecessor gets cancelled — the regimes the calendar queue
        # splits between buckets and the overflow heap.
        sim.call_now(lambda: None)
        doomed = sim.after(2 * NEAR_WINDOW_NS, lambda: None)
        doomed.cancel()
        sim.after(step % 997 + 1, hop, step + 1)

    sim.after(1, hop, 0)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_executed / wall


def _analysis_workload():
    """One Blink run plus everything the analysis phase needs."""
    from repro.experiments.common import run_blink
    from repro.tos.node import COMPONENT_NAMES

    node, _, _sim = run_blink(0, duration_ns=seconds(48))
    timeline = node.timeline()  # marks the log end
    regression = node.regression(timeline)
    raw = node.logger.raw_bytes()
    kwargs = dict(
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        end_time_ns=timeline.end_time_ns,
        single_res_ids=timeline.single_device_ids(),
        multi_res_ids=timeline.multi_device_ids(),
    )
    args = (regression, node.registry, COMPONENT_NAMES,
            node.platform.icount.nominal_energy_per_pulse_j)
    return raw, args, kwargs


def bench_analysis(rounds: int = 20) -> dict:
    """Decode → cover → attribute entries/s, per analysis backend.

    Each round starts from the packed log bytes (decode included) and
    runs to a finished :class:`EnergyMap` — the whole reconstruction a
    sweep point pays per log.  The backends' maps are asserted equal
    before any speedup is published.
    """
    raw, args, kwargs = _analysis_workload()
    entry_count = len(raw) // 12

    def run_streaming():
        return stream_energy_map(iter_entries(raw), *args, **kwargs)

    def run_columnar():
        return columnar_energy_map(raw, *args, **kwargs)

    reference = run_streaming()
    candidate = run_columnar()
    assert list(reference.energy_j) == list(candidate.energy_j) \
        and reference.energy_j == candidate.energy_j, \
        "columnar backend diverged from streaming — fix before benchmarking"

    throughputs: dict[str, list[float]] = {"streaming": [], "columnar": []}
    for _ in range(REPEATS):
        for name, fn in (("streaming", run_streaming),
                         ("columnar", run_columnar)):
            start = time.perf_counter()
            for _round in range(rounds):
                fn()
            wall = time.perf_counter() - start
            throughputs[name].append(entry_count * rounds / wall)
    medians = {}
    spreads = {}
    for name, samples in throughputs.items():
        medians[name], spreads[name] = _median_spread(samples)
    return {
        "analysis_entries_per_sec": {k: round(v) for k, v in medians.items()},
        "analysis_entries_per_sec_spread": {
            k: round(v, 3) for k, v in spreads.items()},
        "analysis_speedup_columnar": round(
            medians["columnar"] / medians["streaming"], 3),
        "log_entry_count": entry_count,
    }


def bench_windowed(rounds: int = 20) -> dict:
    """Live-path throughput: chunked wire decode feeding the windowed
    accumulator — the per-node work the ingest server performs.  Each
    round replays the packed Blink log in 1021-byte chunks (a prime, so
    entry boundaries drift through every offset) through a fresh
    :class:`WireDecoder` + :class:`WindowedAccumulator` at a 1 s stride,
    and the folded windows are asserted bit-identical to the offline
    streaming map before any number is published."""
    from repro.core.accounting import (
        WindowedAccumulator,
        fold_windows,
        stream_energy_map,
    )
    from repro.core.logger import WireDecoder

    raw, args, kwargs = _analysis_workload()
    entry_count = len(raw) // 12
    windowed_kwargs = {k: v for k, v in kwargs.items()
                       if k != "fold_proxies"}
    stride_ns = int(seconds(1))
    chunk = 1021

    def run_windowed():
        accumulator = WindowedAccumulator(
            *args, stride_ns=stride_ns, retain=None, **windowed_kwargs)
        decoder = WireDecoder()
        for offset in range(0, len(raw), chunk):
            for entry in decoder.feed(raw[offset:offset + chunk]):
                accumulator.feed(entry)
        decoder.finish()
        accumulator.finish()
        return accumulator

    reference = stream_energy_map(iter_entries(raw), *args, **kwargs)
    folded = fold_windows(list(run_windowed().windows))
    assert list(folded.energy_j) == list(reference.energy_j) \
        and folded.energy_j == reference.energy_j, \
        "windowed fold diverged from batch — fix before benchmarking"

    samples: list[float] = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _round in range(rounds):
            run_windowed()
        wall = time.perf_counter() - start
        samples.append(entry_count * rounds / wall)
    median, spread = _median_spread(samples)
    return {
        "windowed_entries_per_sec": round(median),
        "windowed_entries_per_sec_spread": round(spread, 3),
        "windowed_stride_ns": stride_ns,
    }


def bench_serve_recovery(rounds: int = 5) -> dict:
    """Crash-recovery latency of the durable ingest path: wall time for
    :meth:`NodeSession.restore` to rebuild one node from its checkpoint
    plus journal-tail replay — the in-process cousin of the serve chaos
    job's restart-to-listening measurement.  The state dir is prepared
    the way a SIGKILLed server leaves it: a full WAL and a checkpoint
    from roughly mid-stream, so every restore pays a real half-log
    replay.  The restored accounting is asserted bit-identical to the
    uninterrupted session before the number is reported."""
    import tempfile

    from repro.experiments.common import run_blink
    from repro.serve import NodeJournal, NodeSession, hello_for_node

    node, _, _sim = run_blink(0, duration_ns=seconds(48))
    hello = hello_for_node(node, stride_ns=int(seconds(1)))
    raw = bytes(node.logger.raw_bytes())
    chunk = 1021
    with tempfile.TemporaryDirectory(prefix="bench-serve-recover-") as root:
        journal = NodeJournal(root, node.node_id)
        journal.create(hello)
        live = NodeSession(hello, retain=64, journal=journal)
        for at in range(0, len(raw), chunk):
            piece = raw[at:at + chunk]
            journal.append_chunk(piece)
            live.ingest(piece)
            if live.checkpointed_bytes == 0 \
                    and live.bytes_received >= len(raw) // 2:
                journal.write_checkpoint(live.checkpoint_state())
                live.checkpointed_bytes = live.bytes_received
        journal.close()

        restored = NodeSession.restore(root, node.node_id, retain=64)
        restored.journal.close()
        assert restored.bytes_received == len(raw)
        assert restored.finish().energy_j == live.finish().energy_j, \
            "restored session diverged from live — fix before benchmarking"

        samples: list[float] = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _round in range(rounds):
                again = NodeSession.restore(root, node.node_id, retain=64)
                again.journal.close()
            samples.append((time.perf_counter() - start) / rounds * 1e3)
    median, spread = _median_spread(samples)
    return {
        "serve_recovery_ms": round(median, 2),
        "serve_recovery_ms_spread": round(spread, 3),
        "serve_recovery_log_bytes": len(raw),
    }


def bench_sweep_grid() -> tuple[float, float, float, str]:
    """(serial, batched, jobs=2-speedup, digest) on the 64-point grid.

    Serial forces ``batch=1`` (one world at a time — the strict
    reference); batched is the default in-process executor (K worlds
    per shared queue, fused decode); parallel is the jobs=2 pool over
    the batched executor.  All three runs must report the same sweep
    digest — batching and pooling change wall time only.
    """
    serial = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES,
                       jobs=1, batch=1)
    batched = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES, jobs=1)
    parallel = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES, jobs=2)
    assert serial.digest() == batched.digest(), \
        "batched sweep diverged from serial reference"
    assert serial.digest() == parallel.digest(), \
        "parallel sweep diverged from serial reference"
    speedup = batched.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    return (len(serial.points) / serial.wall_s,
            len(batched.points) / batched.wall_s,
            speedup, serial.digest())


def bench_cached_sweep(reference_digest: str) -> float:
    """Cache-hit points/sec: the 64-point grid folded from a warm packed
    shard store (one populating run, then a fully cached rerun).  The
    cached fold must reproduce the fresh run's sweep digest exactly —
    that identity is asserted before the number is reported."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as root:
        populate = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES,
                             jobs=1, cache_dir=root)
        assert populate.digest() == reference_digest, \
            "populating run diverged from the uncached reference"
        cached = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES,
                           jobs=1, cache_dir=root)
        assert cached.cache_hits == len(cached.points), \
            "cached rerun re-simulated points — cache keys unstable"
        assert cached.digest() == reference_digest, \
            "cached fold diverged from the fresh sweep"
        return len(cached.points) / cached.wall_s


def run_benchmarks() -> dict:
    events_median, events_spread = _median_spread(
        [bench_engine_events() for _ in range(REPEATS)])
    analysis = bench_analysis()
    windowed = bench_windowed()
    recovery = bench_serve_recovery()
    points_samples: list[float] = []
    batched_samples: list[float] = []
    speedup_samples: list[float] = []
    digest = None
    for _ in range(REPEATS):
        points_per_sec, batched_per_sec, speedup, run_digest = \
            bench_sweep_grid()
        points_samples.append(points_per_sec)
        batched_samples.append(batched_per_sec)
        speedup_samples.append(speedup)
        assert digest is None or digest == run_digest, \
            "sweep digest unstable across repeats — determinism break"
        digest = run_digest
    points_median, points_spread = _median_spread(points_samples)
    batched_median, batched_spread = _median_spread(batched_samples)
    speedup_median, speedup_spread = _median_spread(speedup_samples)
    cached_median, cached_spread = _median_spread(
        [bench_cached_sweep(digest) for _ in range(REPEATS)])
    from repro.sim.sweep import resolve_batch
    numbers = {
        "timing": f"median of {REPEATS}",
        "engine_events_per_sec": round(events_median),
        "engine_events_per_sec_spread": round(events_spread, 3),
        "sweep_points_per_sec_serial": round(points_median, 2),
        "sweep_points_per_sec_serial_spread": round(points_spread, 3),
        "batched_points_per_sec": round(batched_median, 2),
        "batched_points_per_sec_spread": round(batched_spread, 3),
        "batch_k": resolve_batch(None),
        "batch_speedup": round(batched_median / points_median, 3)
        if points_median else 0.0,
        "sweep_points_per_sec_cached": round(cached_median, 2),
        "sweep_points_per_sec_cached_spread": round(cached_spread, 3),
        "sweep_grid_points": len(list(SWEEP_SEEDS)),
        "parallel_speedup_jobs2": round(speedup_median, 3),
        "parallel_speedup_jobs2_spread": round(speedup_spread, 3),
        "sweep_digest": digest,
        "cpu_count": os.cpu_count(),
        "usable_cpus": _usable_cpus(),
    }
    numbers.update(analysis)
    numbers.update(windowed)
    numbers.update(recovery)
    return numbers


def check_against_baseline(numbers: dict) -> list[str]:
    """The regression gate: serial table3 throughput and columnar
    analysis throughput must stay within tolerance of the committed
    baseline; the determinism digest must match it exactly when the
    grid definition is unchanged."""
    failures: list[str] = []
    if not BASELINE_PATH.is_file():
        return [f"no committed baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text("utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                     DEFAULT_TOLERANCE))
    floor = baseline["sweep_points_per_sec_serial"] * (1.0 - tolerance)
    measured = numbers["sweep_points_per_sec_serial"]
    if measured < floor:
        failures.append(
            f"serial table3 throughput regressed: {measured:.2f} points/s "
            f"< {floor:.2f} (baseline "
            f"{baseline['sweep_points_per_sec_serial']:.2f} - {tolerance:.0%})"
        )
    if "batched_points_per_sec" in baseline:
        floor = baseline["batched_points_per_sec"] * (1.0 - tolerance)
        measured = numbers["batched_points_per_sec"]
        if measured < floor:
            failures.append(
                f"batched sweep throughput regressed: {measured:.2f} "
                f"points/s < {floor:.2f} (baseline "
                f"{baseline['batched_points_per_sec']:.2f} - {tolerance:.0%})"
            )
    if "sweep_points_per_sec_cached" in baseline:
        floor = baseline["sweep_points_per_sec_cached"] * (1.0 - tolerance)
        measured = numbers["sweep_points_per_sec_cached"]
        if measured < floor:
            failures.append(
                f"cache-hit fold throughput regressed: {measured:.2f} "
                f"points/s < {floor:.2f} (baseline "
                f"{baseline['sweep_points_per_sec_cached']:.2f} - "
                f"{tolerance:.0%})"
            )
    baseline_analysis = baseline.get("analysis_entries_per_sec", {})
    if "columnar" in baseline_analysis:
        floor = baseline_analysis["columnar"] * (1.0 - tolerance)
        measured = numbers["analysis_entries_per_sec"]["columnar"]
        if measured < floor:
            failures.append(
                f"columnar analysis throughput regressed: "
                f"{measured:.0f} entries/s < {floor:.0f} (baseline "
                f"{baseline_analysis['columnar']:.0f} - {tolerance:.0%})"
            )
    if baseline.get("sweep_grid_points") == numbers["sweep_grid_points"] \
            and baseline.get("sweep_digest") != numbers["sweep_digest"]:
        failures.append(
            "sweep digest diverged from the committed baseline grid — "
            "determinism break, not a perf regression"
        )
    # The pool must actually scale where cores exist.  On a 1-CPU host
    # the number is recorded but not judged (two workers on one core
    # can only lose); the dedicated multi-core CI leg pins >= 2 cores
    # so this branch is exercised there on every run.
    if numbers.get("usable_cpus", 1) >= 2:
        floor = float(os.environ.get("REPRO_BENCH_PARALLEL_FLOOR",
                                     PARALLEL_SPEEDUP_FLOOR))
        measured = numbers["parallel_speedup_jobs2"]
        if measured < floor:
            failures.append(
                f"--jobs 2 speedup too low on a "
                f"{numbers['usable_cpus']}-core host: {measured:.2f}x < "
                f"{floor:.2f}x"
            )
    return failures


def check_parallel() -> int:
    """The multi-core CI leg: run only the sweep grid and gate the
    ``--jobs 2`` wall-clock speedup.  Requires >= 2 usable cores (pin
    with ``taskset -c 0,1`` for a clean two-core statement); refuses to
    pass vacuously on a single-core host."""
    usable = _usable_cpus()
    if usable < 2:
        print(f"FAIL: --check-parallel needs >= 2 usable cores, "
              f"have {usable} — run on a multi-core host or pin with "
              f"taskset", file=sys.stderr)
        return 1
    floor = float(os.environ.get("REPRO_BENCH_PARALLEL_FLOOR",
                                 PARALLEL_SPEEDUP_FLOOR))
    speedups: list[float] = []
    digest = None
    for _ in range(REPEATS):
        _points, _batched, speedup, run_digest = bench_sweep_grid()
        speedups.append(speedup)
        assert digest is None or digest == run_digest, \
            "sweep digest unstable across repeats — determinism break"
        digest = run_digest
    median, spread = _median_spread(speedups)
    print(json.dumps({
        "parallel_speedup_jobs2": round(median, 3),
        "parallel_speedup_jobs2_spread": round(spread, 3),
        "usable_cpus": usable,
        "sweep_digest": digest,
    }, indent=2))
    if median < floor:
        print(f"FAIL: --jobs 2 speedup {median:.2f}x < {floor:.2f}x on "
              f"a {usable}-core host", file=sys.stderr)
        return 1
    print(f"parallel check ok ({median:.2f}x >= {floor:.2f}x "
          f"on {usable} cores)")
    return 0


def main(argv: list[str]) -> int:
    if "--check-parallel" in argv:
        return check_parallel()
    numbers = run_benchmarks()
    print(json.dumps(numbers, indent=2))
    if "--check" in argv:
        failures = check_against_baseline(numbers)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("baseline check ok")
        return 0
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(numbers, indent=2) + "\n", "utf-8")
    print(f"wrote {BASELINE_PATH}")
    return 0


def test_engine_bench_smoke():
    """Tier-1 smoke: the benchmark machinery runs and its numbers are
    sane (positive throughputs, backend-identical maps)."""
    events_per_sec = bench_engine_events(total=2_000)
    assert events_per_sec > 0
    analysis = bench_analysis(rounds=2)
    assert analysis["log_entry_count"] > 0
    assert analysis["analysis_entries_per_sec"]["streaming"] > 0
    assert analysis["analysis_entries_per_sec"]["columnar"] > 0
    windowed = bench_windowed(rounds=2)
    assert windowed["windowed_entries_per_sec"] > 0
    recovery = bench_serve_recovery(rounds=1)
    assert recovery["serve_recovery_ms"] > 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
