"""Engine/pipeline throughput baseline: the perf-trajectory benchmark.

Measures the four numbers that the simulator fast path is judged by and
writes them to ``results/BENCH_engine.json`` so future PRs have a
machine-readable baseline:

* ``engine_events_per_sec`` — raw calendar-queue throughput on a
  synthetic workload (bursty same-instant events, far-future timer arms,
  cancellations);
* ``log_entries_per_sec`` — decode → timeline → accounting throughput of
  the streaming pipeline over a real Blink log;
* ``sweep_points_per_sec_serial`` — end-to-end table3 points per second
  on the 64-point reference grid (the number the regression gate
  watches);
* ``parallel_speedup_jobs2`` — wall-clock speedup of the same grid at
  ``--jobs 2`` (only meaningful with >= 2 cores; the JSON records
  ``cpu_count`` so a single-core box is not read as a regression).

``--check`` compares a fresh serial-throughput measurement against the
committed baseline and exits nonzero if it regressed by more than the
tolerance (default 25 %, the CI gate).  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_engine.py [--check]``) or via
pytest.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.accounting import stream_energy_map
from repro.core.logger import iter_entries
from repro.sim.engine import NEAR_WINDOW_NS, Simulator
from repro.sim.sweep import run_sweep
from repro.units import seconds

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_engine.json"

#: The reference sweep grid: 64 table3 points with the paper's noise
#: sources on (full-length runs, so the campaign is realistic work).
#: benchmarks/bench_sweep.py imports these — keep the grid defined once.
SWEEP_SEEDS = range(64)
SWEEP_OVERRIDES = {
    "duration_ns": [str(seconds(48))],
    "device_variation": ["0.02"],
    "icount_jitter_pulses": ["1.0"],
}

#: Serial throughput may regress by at most this factor before --check
#: fails (the ISSUE-3 CI gate; override with REPRO_BENCH_TOLERANCE).
DEFAULT_TOLERANCE = 0.25


def bench_engine_events(total: int = 60_000) -> float:
    """Raw scheduler throughput: a synthetic mix of same-instant bursts,
    short hops, far-future arms, and cancellations."""
    sim = Simulator()
    fired = [0]

    def hop(step: int) -> None:
        fired[0] += 1
        if fired[0] >= total:
            return
        # A burst at the same instant, a short hop, and a far arm whose
        # predecessor gets cancelled — the regimes the calendar queue
        # splits between buckets and the overflow heap.
        sim.call_now(lambda: None)
        doomed = sim.after(2 * NEAR_WINDOW_NS, lambda: None)
        doomed.cancel()
        sim.after(step % 997 + 1, hop, step + 1)

    sim.after(1, hop, 0)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_executed / wall


def bench_log_pipeline() -> tuple[float, int]:
    """Streaming decode→timeline→accounting throughput on a Blink log."""
    from repro.experiments.common import run_blink

    node, _, sim = run_blink(0, duration_ns=seconds(48))
    timeline = node.timeline()  # marks the log end
    regression = node.regression(timeline)
    raw = node.logger.raw_bytes()
    entry_count = len(raw) // 12
    from repro.tos.node import COMPONENT_NAMES

    start = time.perf_counter()
    rounds = 20
    for _ in range(rounds):
        stream_energy_map(
            iter_entries(raw), regression, node.registry, COMPONENT_NAMES,
            node.platform.icount.nominal_energy_per_pulse_j,
            idle_name=node.registry.name_of(node.idle),
            end_time_ns=timeline.end_time_ns,
            single_res_ids=timeline.single_device_ids(),
            multi_res_ids=timeline.multi_device_ids(),
        )
    wall = time.perf_counter() - start
    return entry_count * rounds / wall, entry_count


def bench_sweep_grid() -> tuple[float, float, str]:
    """Serial points/sec and jobs=2 speedup on the 64-point grid."""
    serial = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES, jobs=1)
    parallel = run_sweep("table3", SWEEP_SEEDS, SWEEP_OVERRIDES, jobs=2)
    assert serial.digest() == parallel.digest(), \
        "parallel sweep diverged from serial reference"
    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    return len(serial.points) / serial.wall_s, speedup, serial.digest()


def run_benchmarks() -> dict:
    events_per_sec = bench_engine_events()
    entries_per_sec, entry_count = bench_log_pipeline()
    points_per_sec, speedup, digest = bench_sweep_grid()
    return {
        "engine_events_per_sec": round(events_per_sec),
        "log_entries_per_sec": round(entries_per_sec),
        "log_entry_count": entry_count,
        "sweep_points_per_sec_serial": round(points_per_sec, 2),
        "sweep_grid_points": len(list(SWEEP_SEEDS)),
        "parallel_speedup_jobs2": round(speedup, 3),
        "sweep_digest": digest,
        "cpu_count": os.cpu_count(),
    }


def check_against_baseline(numbers: dict) -> list[str]:
    """The regression gate: serial table3 throughput must stay within
    tolerance of the committed baseline; the determinism digest must
    match it exactly when the grid definition is unchanged."""
    failures: list[str] = []
    if not BASELINE_PATH.is_file():
        return [f"no committed baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text("utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                     DEFAULT_TOLERANCE))
    floor = baseline["sweep_points_per_sec_serial"] * (1.0 - tolerance)
    measured = numbers["sweep_points_per_sec_serial"]
    if measured < floor:
        failures.append(
            f"serial table3 throughput regressed: {measured:.2f} points/s "
            f"< {floor:.2f} (baseline "
            f"{baseline['sweep_points_per_sec_serial']:.2f} - {tolerance:.0%})"
        )
    if baseline.get("sweep_grid_points") == numbers["sweep_grid_points"] \
            and baseline.get("sweep_digest") != numbers["sweep_digest"]:
        failures.append(
            "sweep digest diverged from the committed baseline grid — "
            "determinism break, not a perf regression"
        )
    return failures


def main(argv: list[str]) -> int:
    numbers = run_benchmarks()
    print(json.dumps(numbers, indent=2))
    if "--check" in argv:
        failures = check_against_baseline(numbers)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("baseline check ok")
        return 0
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(numbers, indent=2) + "\n", "utf-8")
    print(f"wrote {BASELINE_PATH}")
    return 0


def test_engine_bench_smoke():
    """Tier-1 smoke: the benchmark machinery runs and its numbers are
    sane (positive throughputs, digest-stable sweeps)."""
    events_per_sec = bench_engine_events(total=2_000)
    assert events_per_sec > 0
    entries_per_sec, entry_count = bench_log_pipeline()
    assert entries_per_sec > 0 and entry_count > 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
