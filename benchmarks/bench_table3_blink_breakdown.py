"""Table 3: where the joules have gone in Blink (all four sub-tables)."""

from conftest import run_once

from repro.experiments import table3


def test_table3_blink_breakdown(benchmark, archive):
    result = run_once(benchmark, table3.run)
    archive(result)
    hw = result.data["energy_by_hw_mj"]
    act = result.data["energy_by_activity_mj"]
    # Per-component energies within a few percent of the paper's Table 3c.
    assert abs(hw["LED0"] - 180.71) / 180.71 < 0.03
    assert abs(hw["LED1"] - 161.06) / 161.06 < 0.03
    assert abs(hw["LED2"] - 59.84) / 59.84 < 0.03
    assert abs(hw["Const."] - 119.26) / 119.26 < 0.05
    # Per-activity energies match Table 3d: the LED energy lands on the
    # right activity, VTimer and the interrupt proxy are tiny but nonzero.
    assert abs(act["1:Red"] - 180.78) / 180.78 < 0.03
    assert abs(act["1:Green"] - 161.10) / 161.10 < 0.03
    assert abs(act["1:Blue"] - 59.86) / 59.86 < 0.03
    assert 0.05 < act["1:VTimer"] < 0.5
    assert 0.005 < act["1:int_TIMERB0"] < 0.1
    # CPU stays active well under 1 % of the run (paper: 0.178 %).
    assert 0.05 < result.data["cpu_active_pct"] < 0.5
    # Accounting closes against the meter.
    assert result.data["accounting_error"] < 0.001
