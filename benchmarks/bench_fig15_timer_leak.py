"""Figure 15: the unexpected 16 Hz DCO-calibration timer."""

from conftest import run_once

from repro.experiments import fig15


def test_fig15_timer_leak(benchmark, archive):
    result = run_once(benchmark, fig15.run)
    archive(result)
    # The leak fires at ~16 Hz; the fixed build not at all.
    assert abs(result.data["rate_hz"] - 16.0) < 1.0
    assert result.data["fixed_fires"] == 0
    # And it costs real CPU time and energy.
    assert result.data["proxy_cpu_ms"] > 1.0
    assert result.data["leak_energy_uj"] > 10.0
