"""Figure 14: normal wake-up vs false-positive detail, and the
Quanto-estimated radio listen draw."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14_wakeup_detail(benchmark, archive):
    result = run_once(benchmark, fig14.run)
    archive(result)
    # A normal wake-up is a short blip; a false positive holds the radio
    # on for about the 100 ms detect timeout.
    assert result.data["normal_ms"] < 30
    assert 80 <= result.data["false_positive_ms"] <= 140
    # The regression on the LPL log recovers the listen draw the paper
    # estimated: 18.46 mA / 61.8 mW at 3.35 V.
    assert abs(result.data["rx_current_ma"] - 18.46) / 18.46 < 0.08
    assert abs(result.data["rx_power_mw"] - 61.8) / 61.8 < 0.08
