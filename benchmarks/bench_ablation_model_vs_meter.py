"""Ablation: datasheet-model pricing vs Quanto's metered regression."""

from conftest import run_once

from repro.experiments import ablation_model_vs_meter


def test_ablation_model_vs_meter(benchmark, archive):
    result = run_once(benchmark, ablation_model_vs_meter.run)
    archive(result)
    # Quanto's estimates land within a few percent of the hidden truth;
    # the datasheet model misses by tens of percent — the paper's
    # motivation, quantified.
    assert result.data["mean_abs_err_quanto_pct"] < 5.0
    assert result.data["mean_abs_err_model_pct"] > 30.0
