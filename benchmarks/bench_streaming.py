"""Streaming vs batch accounting: peak memory and wall time.

The same 48-second Blink log is priced twice with the same regression:

* **batch** — decode the whole log into a list, materialize the
  TimelineBuilder (entry list + per-device index), and build the map;
* **streaming** — a single pass: ``iter_entries`` feeding
  ``stream_energy_map``, nothing materialized but open spans.

The two maps are asserted identical (the refactor's contract), the
speed/space numbers go to ``results/``.  Peak memory is tracemalloc's
peak of allocations made inside each measured region.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_streaming.py``)
or via pytest.
"""

from __future__ import annotations

import time
import tracemalloc
from pathlib import Path

from repro.core.accounting import build_energy_map, stream_energy_map
from repro.core.logger import ENTRY_SIZE, decode_log, iter_entries
from repro.core.timeline import TimelineBuilder
from repro.core.report import format_table
from repro.experiments.common import run_blink
from repro.tos.node import COMPONENT_NAMES, RES_TIMERB
from repro.units import seconds

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DURATION_S = 48


def _measure(fn):
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    wall_s = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall_s, peak


def bench_streaming() -> str:
    node, _app, _sim = run_blink(seed=0, duration_ns=seconds(DURATION_S))
    node.mark_log_end()
    raw = node.logger.raw_bytes()
    end_time_ns = node.sim.now
    single_ids = [device.res_id for device in node._single_devices()]
    idle_name = node.registry.name_of(node.idle)
    energy_per_pulse = node.platform.icount.nominal_energy_per_pulse_j
    regression = node.regression()  # shared input, outside both regions

    def batch():
        entries = decode_log(raw)
        timeline = TimelineBuilder(
            entries, end_time_ns=end_time_ns,
            single_res_ids=single_ids, multi_res_ids=[RES_TIMERB])
        return build_energy_map(
            timeline, regression, node.registry, COMPONENT_NAMES,
            energy_per_pulse, idle_name=idle_name)

    def streaming():
        return stream_energy_map(
            iter_entries(raw), regression, node.registry, COMPONENT_NAMES,
            energy_per_pulse, idle_name=idle_name,
            end_time_ns=end_time_ns,
            single_res_ids=single_ids, multi_res_ids=[RES_TIMERB])

    batch_map, batch_wall, batch_peak = _measure(batch)
    stream_map, stream_wall, stream_peak = _measure(streaming)
    assert batch_map.energy_j == stream_map.energy_j, \
        "streaming accounting diverged from batch"
    assert batch_map.time_ns == stream_map.time_ns

    rows = [
        ("batch", f"{batch_wall:.3f}", f"{batch_peak / 1024:.0f}", "1.00"),
        ("streaming", f"{stream_wall:.3f}", f"{stream_peak / 1024:.0f}",
         f"{batch_peak / stream_peak:.2f}" if stream_peak else "-"),
    ]
    report = "\n\n".join([
        f"== streaming bench: Blink {DURATION_S} s, "
        f"{len(raw) // ENTRY_SIZE} log entries ==\n"
        f"-- maps identical: "
        f"{sum(batch_map.energy_j.values()) * 1e3:.3f} mJ attributed",
        format_table(
            ("path", "wall (s)", "peak alloc (KiB)", "space ratio"), rows,
            title="batch vs streaming accounting"),
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_streaming.txt").write_text(report + "\n")
    return report


def test_streaming_vs_batch(capsys):
    report = bench_streaming()
    with capsys.disabled():
        print()
        print(report)


if __name__ == "__main__":
    print(bench_streaming())
