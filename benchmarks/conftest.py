"""Benchmark harness plumbing.

Every bench runs one experiment (single round — these are simulations,
not microbenchmarks), prints its rendered tables/figures, and archives
the output under ``results/`` so a full ``pytest benchmarks/
--benchmark-only`` leaves a browsable record of every reproduced table
and figure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture()
def archive(capsys):
    """Print an ExperimentResult and write it to results/<exp_id>.txt."""

    def _archive(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return result

    return _archive


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
