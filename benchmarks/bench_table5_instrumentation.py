"""Table 5: instrumentation burden in lines of code."""

from conftest import run_once

from repro.experiments import table5


def test_table5_instrumentation(benchmark, archive):
    result = run_once(benchmark, table5.run)
    archive(result)
    # The instrumentation touches each abstraction at a handful of call
    # sites, and the core framework is a self-contained body of code —
    # the paper's "changes are highly localized" claim.
    assert result.data["total_call_sites"] >= 20
    assert result.data["new_code_loc"] >= 150
