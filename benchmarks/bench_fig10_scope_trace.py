"""Figure 10: scope current traces with the iCount switching ripple."""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_scope_trace(benchmark, archive):
    result = run_once(benchmark, fig10.run)
    archive(result)
    means = result.data["means_ma"]
    # Paper's two annotated means: 3.05 mA and 6.30 mA.
    assert abs(means["LED1(G) On"] - 3.05) < 0.15
    assert abs(means["All LEDs On"] - 6.30) < 0.35
    # The linear current/frequency relation with near-perfect fit.
    assert abs(result.data["slope"] - 2.77) < 0.05
    assert result.data["r2"] > 0.999
