"""Table 1: the platform catalog (sinks, power states, nominal draws)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_catalog(benchmark, archive):
    result = run_once(benchmark, table1.run)
    archive(result)
    assert result.data["total_sinks"] >= 16
    assert result.data["mcu_states"] == 16
    assert result.data["radio_states"] == 14
