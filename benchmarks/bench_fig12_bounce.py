"""Figure 12: cross-node activity tracking in Bounce."""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_bounce(benchmark, archive):
    result = run_once(benchmark, fig12.run)
    archive(result)
    # Packets actually bounced both ways.
    assert result.data["node1_received"] >= 2
    assert result.data["node1_bounces"] >= 1
    # The reception proxy was bound to the remote activity on node 1 ...
    assert result.data["rx_bind_found"]
    # ... the radio was painted with the remote activity for the
    # bounce-back ...
    assert result.data["remote_radio_segment_found"]
    # ... and real energy on node 1 is charged to node 4's activity.
    assert result.data["remote_activity_mj_on_node1"] > 0.5
