#!/usr/bin/env python3
"""An always-on energy profiler: quanto-top (paper §5.3).

Two modes:

* **In-process** (default): runs the sense-and-send workload with online
  counters and a periodic sampler, printing a `top`-style screen every
  few simulated seconds — no log, no offline pass, constant memory.
  Note the profiler accounting for itself under the ``1:Quanto``
  activity, like Unix top showing its own CPU usage.
* **Client** (``--server ADDR``): the same workload, but the breakdowns
  come from a live ingest server (``python -m repro serve``).  The node
  streams its packed log over the socket in small chunks; between
  chunks the client queries the server's windowed accumulator and
  renders the *server's* live view — the breakdown a fleet operator
  would watch, attributed off-node while the stream is still in flight.
"""

import argparse
import asyncio

from repro import NodeConfig, QuantoNode, Simulator
from repro.apps.sense_send import SenseAndSendApp
from repro.core.report import format_table
from repro.core.topq import QuantoTop
from repro.sim.rng import RngFactory
from repro.units import seconds, to_mj


def main_inprocess(duration_s: int) -> None:
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True),
                      rng_factory=RngFactory(0))
    app = SenseAndSendApp(period_ns=seconds(3), send=False)
    top = QuantoTop(node, refresh_ns=seconds(4))

    def start(n) -> None:
        app.start(n)
        top.start()

    node.boot(start)
    step = max(1, duration_s // 3)
    for checkpoint in range(step, duration_s + 1, step):
        sim.run(until=seconds(checkpoint))
        print(f"--- t = {checkpoint} s ---")
        print(top.render())
        print()
    print(f"samples taken by the app: {app.samples_taken}; "
          f"top refreshes: {len(top.samples)}; "
          f"memory for counters: {node.counters.memory_bytes()} bytes")


def _render_breakdown(reply: dict, title: str) -> str:
    """A top-style per-activity table from a server breakdown reply
    (energy triples -> activity totals, largest first)."""
    by_activity: dict[str, float] = {}
    for _component, activity, joules in reply["energy_j"]:
        by_activity[activity] = by_activity.get(activity, 0.0) + joules
    if not by_activity:  # nothing attributed yet (no interval closed)
        return f"{title}\n  (warming up: no power interval closed yet)"
    rows = [(activity, f"{to_mj(joules):.2f}")
            for activity, joules in sorted(by_activity.items(),
                                           key=lambda kv: -kv[1])]
    return format_table(("activity", "E (mJ)"), rows, title=title)


def main_client(server: str, duration_s: int, stride_s: float,
                refreshes: int) -> None:
    from repro.serve import final_map, parse_address, query, stream_node

    address = parse_address(server)
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1),
                      rng_factory=RngFactory(0))
    app = SenseAndSendApp(period_ns=seconds(3), send=False)
    node.boot(app.start)
    sim.run(until=seconds(duration_s))

    async def run() -> None:
        shown = 0

        async def on_chunk(sent: int, total: int) -> None:
            nonlocal shown
            due = sent * refreshes // total
            if due <= shown or sent == total:
                return
            shown = due
            reply = await query(address,
                                {"cmd": "breakdown", "node_id": 1})
            state = "live" if reply.get("live") else "final"
            print(_render_breakdown(
                reply, f"server view ({state}), "
                       f"{sent}/{total} bytes streamed"))
            print()

        # Tiny chunks on purpose: many partial-entry boundaries, many
        # chances to watch the server's view advance mid-stream.
        reply = await stream_node(address, node,
                                  stride_ns=int(seconds(stride_s)),
                                  chunk_size=97, on_chunk=on_chunk)
        emap = final_map(reply)
        rows = [(name, f"{to_mj(e):.2f}")
                for name, e in sorted(emap.energy_by_activity().items(),
                                      key=lambda kv: -kv[1])]
        print(format_table(
            ("activity", "E (mJ)"), rows,
            title=f"final folded map from server "
                  f"({reply['windows']} windows)"))
        # A server run with --expect-nodes may shut down right after the
        # final ingest reply above; this extra query is display garnish,
        # so a vanished server just skips it.
        try:
            windows = await query(address, {"cmd": "windows",
                                            "node_id": 1, "last": 3})
        except (ConnectionError, OSError):
            windows = None
        if windows is not None:
            print(f"\nlast windows: " + ", ".join(
                f"[{w['index']}] {w['intervals']} intervals"
                + (" (final)" if w["final"] else "")
                for w in windows["windows"]))
        print(f"accounting error {emap.accounting_error * 100:.4f} %")

    asyncio.run(run())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server", metavar="ADDR", default=None,
                        help="render live breakdowns from an ingest "
                             "server at ADDR (host:port or unix:/path) "
                             "instead of in-process counters")
    parser.add_argument("--seconds", type=int, default=24,
                        help="simulated workload duration (default 24)")
    parser.add_argument("--stride", type=float, default=2.0,
                        help="window stride in seconds for --server "
                             "mode (default 2)")
    parser.add_argument("--refreshes", type=int, default=3,
                        help="live screens to render while streaming "
                             "(default 3)")
    args = parser.parse_args()
    if args.server is None:
        main_inprocess(args.seconds)
    else:
        main_client(args.server, args.seconds, args.stride, args.refreshes)


if __name__ == "__main__":
    main()
