#!/usr/bin/env python3
"""An always-on energy profiler: quanto-top (paper §5.3).

Runs the sense-and-send workload with online counters and a periodic
sampler, printing a `top`-style screen every few simulated seconds — no
log, no offline pass, constant memory.  Note the profiler accounting for
itself under the ``1:Quanto`` activity, like Unix top showing its own
CPU usage.
"""

from repro import NodeConfig, QuantoNode, Simulator
from repro.apps.sense_send import SenseAndSendApp
from repro.core.topq import QuantoTop
from repro.sim.rng import RngFactory
from repro.units import seconds


def main() -> None:
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True),
                      rng_factory=RngFactory(0))
    app = SenseAndSendApp(period_ns=seconds(3), send=False)
    top = QuantoTop(node, refresh_ns=seconds(4))

    def start(n) -> None:
        app.start(n)
        top.start()

    node.boot(start)
    for checkpoint in (8, 16, 24):
        sim.run(until=seconds(checkpoint))
        print(f"--- t = {checkpoint} s ---")
        print(top.render())
        print()
    print(f"samples taken by the app: {app.samples_taken}; "
          f"top refreshes: {len(top.samples)}; "
          f"memory for counters: {node.counters.memory_bytes()} bytes")


if __name__ == "__main__":
    main()
