#!/usr/bin/env python3
"""The interference case study: Wi-Fi vs low-power listening.

Reproduces the paper's Section 4.3 experiment: a duty-cycled 802.15.4
node 10 cm from an 802.11b access point.  On channel 17 the Wi-Fi energy
reads as channel activity and triggers false wake-ups that keep the radio
listening for 100 ms at a time; on channel 26 nothing happens.  Quanto
pins the wasted energy on the never-bound ``pxy_RX`` proxy activity.
"""

from repro.core.report import format_table
from repro.experiments.fig13 import run_channel
from repro.tos.node import RES_RADIO
from repro.units import to_mj


def main() -> None:
    rows = []
    for channel in (17, 26):
        result = run_channel(channel, seed=0)
        rows.append((
            str(channel),
            str(result["wakeups"]),
            f"{100 * result['fp_rate']:.1f} %",
            f"{result['duty_pct']:.2f} %",
            f"{result['power_mw']:.2f} mW",
        ))
        if channel == 17:
            node = result["node"]
            emap = node.energy_map()
            proxy_name = node.registry.name_of(node.proxies.label("pxy_RX"))
            wasted = emap.energy_by_activity().get(proxy_name, 0.0)
            radio_total = emap.energy_by_component().get("Radio", 0.0)
    print(format_table(
        ("802.15.4 ch", "wakeups", "false positives", "radio duty",
         "avg power"), rows,
        title="LPL next to an 802.11b AP on Wi-Fi channel 6"))
    print()
    print(f"on channel 17, {to_mj(wasted):.1f} mJ of the radio's "
          f"{to_mj(radio_total):.1f} mJ is charged to the unbound "
          f"receive proxy — energy wasted on false wake-ups, visible "
          f"directly in the activity breakdown")


if __name__ == "__main__":
    main()
