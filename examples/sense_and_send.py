#!/usr/bin/env python3
"""The Figure-7 application: sense humidity and temperature, send a packet.

Shows the application-programmer API: paint the CPU with an activity
label before each logical phase (ACT_HUM, ACT_TEMP, ACT_PKT) and let the
OS propagate the labels through the split-phase sensor driver, the
arbiter, the timers, and the radio stack.  The breakdown then prices each
phase of the pipeline separately — including the sensor's conversion
energy and the radio's transmission energy.
"""

from repro import NodeConfig
from repro.apps.sense_send import SenseAndSendApp
from repro.core.report import format_table
from repro.tos.network import Network
from repro.units import seconds, to_mj


def main() -> None:
    network = Network(seed=0)
    # The sensing node duty-cycles its radio (LPL): it only powers up to
    # transmit, which also keeps the radio's RX state distinguishable
    # from the constant floor in the regression.  The sink is always on.
    network.add_node(NodeConfig(node_id=1, mac="lpl"))
    network.add_node(NodeConfig(node_id=0, mac="csma"))  # the sink
    app = SenseAndSendApp(sink_id=0, period_ns=seconds(5))
    received = []

    def sink(node) -> None:
        node.am.register_receiver(0x53, received.append)
        node.mac.start()

    network.boot_all({1: app.start, 0: sink})
    network.run(seconds(30))

    print(f"samples: {app.samples_taken}, packets sent: "
          f"{app.packets_sent}, received at sink: {len(received)}\n")

    node = network.node(1)
    emap = node.energy_map(fold_proxies=True)
    rows = [(name, f"{to_mj(e):.3f}")
            for name, e in sorted(emap.energy_by_activity().items())
            if abs(e) > 1e-7]
    print(format_table(("activity", "E (mJ)"), rows,
                       title="node 1: energy by activity (30 s)"))
    print()
    rows = [(name, f"{to_mj(e):.3f}")
            for name, e in sorted(emap.energy_by_component().items())]
    print(format_table(("component", "E (mJ)"), rows,
                       title="node 1: energy by hardware component"))


if __name__ == "__main__":
    main()
