#!/usr/bin/env python3
"""Quickstart: profile Blink and answer "where have all the joules gone?"

Boots one HydroWatch-class node running Blink (three timers toggling three
LEDs under the Red/Green/Blue activities), runs it for 48 simulated
seconds, and walks the whole Quanto pipeline:

1. decode the 12-byte event log,
2. rebuild power-state intervals and activity segments,
3. run the Section-2.5 regression to split the aggregate meter reading
   into per-component draws,
4. build the energy map: energy by hardware component and by activity.
"""

from repro import NodeConfig, QuantoNode, Simulator
from repro.apps.blink import BlinkApp
from repro.core.report import format_table
from repro.sim.rng import RngFactory
from repro.units import seconds, to_mj


def main() -> None:
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1), rng_factory=RngFactory(0))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))

    print(f"log: {node.logger.records_written} entries "
          f"({node.logger.ram_bytes_used()} bytes of RAM)")
    print(f"iCount: {node.platform.icount.read()} pulses\n")

    regression = node.regression()
    rows = [
        (col.name, f"{regression.current_ma(col.name):.2f}",
         f"{regression.power_w[col.name] * 1e3:.2f}")
        for col in regression.columns
    ]
    rows.append(("Const.", f"{regression.const_current_ma:.2f}",
                 f"{regression.const_power_w * 1e3:.2f}"))
    print(format_table(("component", "I (mA)", "P (mW)"), rows,
                       title="per-component draws, regressed from the "
                             "aggregate meter"))
    print()

    emap = node.energy_map()
    rows = [(name, f"{to_mj(e):.2f}")
            for name, e in sorted(emap.energy_by_activity().items())]
    print(format_table(("activity", "E (mJ)"), rows,
                       title="energy by activity (48 s)"))
    print(f"\naccounting closes on the meter within "
          f"{emap.accounting_error * 100:.4f} %")


if __name__ == "__main__":
    main()
