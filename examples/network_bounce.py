#!/usr/bin/env python3
"""Cross-node energy tracking: the Bounce application.

Two nodes ping-pong two packets.  The hidden activity field in each
packet carries the originating activity across the air, so node 1's work
on node 4's packet — the reception interrupts, the SPI drain, the
indicator LED, the bounce-back transmission — is charged to
``4:BounceApp``.  The network-wide merge then prices each activity across
the whole network.
"""

from repro import NodeConfig
from repro.apps.bounce import BounceApp
from repro.core.netmerge import merge_energy_maps
from repro.core.report import format_table
from repro.tos.network import Network
from repro.units import ms, seconds, to_mj


def main() -> None:
    network = Network(seed=0)
    network.add_node(NodeConfig(node_id=1, mac="csma"))
    network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(10))

    print(f"node 1: received {app1.received}, bounced {app1.bounces}")
    print(f"node 4: received {app4.received}, bounced {app4.bounces}\n")

    maps = {nid: network.node(nid).energy_map(fold_proxies=True)
            for nid in (1, 4)}
    for nid, emap in maps.items():
        rows = [(name, f"{to_mj(e):.3f}")
                for name, e in sorted(emap.energy_by_activity().items())
                if e > 1e-6]
        print(format_table(("activity", "E (mJ)"), rows,
                           title=f"node {nid}: energy by activity"))
        print()

    report = merge_energy_maps(maps)
    rows = []
    for activity in sorted(report.by_activity):
        spread = report.spread[activity]
        rows.append((
            activity,
            f"{to_mj(report.by_activity[activity]):.3f}",
            ", ".join(f"node{n}: {to_mj(e):.3f}"
                      for n, e in sorted(spread.items())),
        ))
    print(format_table(("activity", "network total (mJ)", "spread"), rows,
                       title="network-wide energy per activity"))
    for origin in (1, 4):
        name = f"{origin}:BounceApp"
        frac = report.remote_fraction(name, origin)
        print(f"{name}: {frac * 100:.1f} % of its energy was spent on "
              f"other nodes")


if __name__ == "__main__":
    main()
