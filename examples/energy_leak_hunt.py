#!/usr/bin/env python3
"""Finding an energy leak (paper Section 5.3 / Figure 15).

A developer notices an application draws more than expected.  With
Quanto, the activity timeline shows an interrupt proxy — ``int_TIMERA1``
— firing 16 times a second that nothing in the application asked for:
the MSP430 clock subsystem recalibrating its DCO.  We quantify the leak
and verify the fix.
"""

from repro import NodeConfig, QuantoNode, Simulator
from repro.apps.timer_leak import TimerLeakApp
from repro.core.report import render_kv
from repro.hw.platform import PlatformConfig
from repro.sim.rng import RngFactory
from repro.units import seconds, to_s


def run(dco: bool):
    sim = Simulator()
    node = QuantoNode(
        sim,
        NodeConfig(node_id=32, platform=PlatformConfig(dco_calibration=dco)),
        rng_factory=RngFactory(0))
    app = TimerLeakApp()
    node.boot(app.start)
    sim.run(until=seconds(10))
    return sim, node, app


def main() -> None:
    sim, leaky, app = run(dco=True)
    _, fixed, _ = run(dco=False)

    emap = leaky.energy_map()
    proxy_name = leaky.registry.name_of(
        leaky.proxies.label("int_TIMERA1"))
    cpu_times = emap.time_by_activity("CPU")
    leak_cpu_ms = cpu_times.get(proxy_name, 0) / 1e6
    leak_energy = (leaky.platform.rail.energy()
                   - fixed.platform.rail.energy())

    print(render_kv("the leak, as Quanto shows it", [
        ("suspicious activity", proxy_name),
        ("interrupt rate",
         f"{app.calibration_interrupts() / to_s(sim.now):.1f} Hz"),
        ("CPU time it consumed",
         f"{leak_cpu_ms:.1f} ms over {to_s(sim.now):.0f} s"),
        ("energy vs the fixed build",
         f"{leak_energy * 1e6:.0f} uJ over {to_s(sim.now):.0f} s"),
        ("projected waste per day",
         f"{leak_energy * 8640 * 1e3:.1f} mJ"),
    ]))
    print("\nfix: disable the always-on DCO calibration "
          "(dco_calibration=False) — the fixed build fires it 0 times")


if __name__ == "__main__":
    main()
