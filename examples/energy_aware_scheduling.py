#!/usr/bin/env python3
"""Energy-aware scheduling (paper Section 5.3).

"Since Quanto already tracks energy usage by activity, an extension to
the operating system scheduler would enable energy-aware policies like
equal-energy scheduling for threads."

Two activities compete for the CPU: a cheap one (a short checksum pass)
and an expensive one (a long compression pass, 10x the cycles).  Under
plain FIFO scheduling the expensive activity spends whatever it likes;
under the equal-energy budget scheduler its tasks start getting deferred
once it exhausts its share of each epoch, and the online counters show
the gap between the two activities closing.
"""

from repro import NodeConfig, QuantoNode, Simulator
from repro.core.counters import CounterAccountant
from repro.core.report import format_table
from repro.core.sched_ext import EnergyBudgetScheduler, EqualEnergyPolicy
from repro.sim.rng import RngFactory
from repro.units import ms, seconds, to_mj


def run(budgeted: bool):
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True),
                      rng_factory=RngFactory(0))
    cheap = node.activity("Cheap")
    costly = node.activity("Costly")
    budget = EnergyBudgetScheduler(
        node.scheduler, node.counters,
        EqualEnergyPolicy(epoch_budget_j=0.0012))
    if budgeted:
        budget.register_activity(cheap)
        budget.register_activity(costly)

    def cheap_work() -> None:
        node.cpu_activity.set(cheap)
        node.platform.mcu.consume(8_000)  # ~8 ms of checksumming

    def costly_work() -> None:
        node.cpu_activity.set(costly)
        node.platform.mcu.consume(80_000)  # ~80 ms of compressing

    def tick() -> None:
        budget.post(cheap_work, label="cheap", activity=cheap)
        budget.post(costly_work, label="costly", activity=costly)

    def epoch() -> None:
        budget.new_epoch()

    def app(n) -> None:
        n.vtimers.start_periodic(tick, ms(250), name="tick")
        n.vtimers.start_periodic(epoch, seconds(2), name="epoch")

    node.boot(app)
    sim.run(until=seconds(20))
    snapshot = node.counters.snapshot()
    energy = {
        node.registry.name_of(label): slot.energy_j
        for label, slot in snapshot.items()
    }
    return energy, budget


def main() -> None:
    plain_energy, _ = run(budgeted=False)
    fair_energy, budget = run(budgeted=True)

    rows = []
    for name in ("1:Cheap", "1:Costly"):
        rows.append((name,
                     f"{to_mj(plain_energy.get(name, 0.0)):.2f}",
                     f"{to_mj(fair_energy.get(name, 0.0)):.2f}"))
    print(format_table(
        ("activity", "FIFO (mJ)", "equal-energy budget (mJ)"), rows,
        title="per-activity energy over 20 s (online counters)"))
    print(f"\nbudget scheduler deferred {budget.deferrals} tasks and "
          f"released {budget.releases} at epoch boundaries")


if __name__ == "__main__":
    main()
